//! The synchronous simulation engine.
//!
//! The per-cycle hot path is allocation-free in steady state: switching
//! decisions come from a precomputed [`RouteLut`] (one byte per
//! `(stage, switch, tag bit)`, blockage flags baked in), link buffers
//! live in a flat [`QueueArena`] of fixed-capacity ring buffers indexed
//! arithmetically by `(stage, switch, kind)` — the same layout as
//! [`Link::flat_index`] — and candidate links are fixed-size inline
//! arrays instead of heap-allocated lists. Per-switch occupancy counters
//! let the advance loop skip empty switches (and whole empty stages)
//! without changing the sequence of routing decisions or RNG draws, so
//! statistics are bit-identical to the original nested-`Vec` engine
//! (enforced by `tests/parity.rs`).

use crate::active::ActiveArena;
use crate::event::{Event, EventQueue};
use crate::packet::Packet;
use crate::queue::{LaneArbitration, QueueArena, ReservationTable};
use crate::stats::SimStats;
use iadm_core::lut::{kind_for, RouteLut};
use iadm_core::{NetworkState, SwitchState, TsdtTag};
use iadm_fault::{BlockageMap, FaultTimeline};
use iadm_rng::{Rng, RngCore, StdRng};
use iadm_topology::{bit, Link, LinkKind, Size};
use iadm_workload::{Injection, TrafficPattern, WorkloadSource, WorkloadSpec, NO_OP};
use std::collections::VecDeque;
use std::sync::Arc;

/// Static configuration of a simulation run.
#[derive(Debug, Clone, Copy)]
pub struct SimConfig {
    /// Network size.
    pub size: Size,
    /// Capacity of each output-link buffer, in packets.
    pub queue_capacity: usize,
    /// Number of cycles to simulate.
    pub cycles: usize,
    /// First cycle whose injections count toward latency statistics:
    /// packets injected at cycles `< warmup` are excluded, a packet
    /// injected exactly at cycle `warmup` is counted (boundary pinned by
    /// a test).
    pub warmup: usize,
    /// Probability that each input injects a new packet each cycle.
    pub offered_load: f64,
    /// RNG seed (runs are deterministic per seed).
    pub seed: u64,
    /// Which scheduling core drives the run (statistics are identical
    /// either way; see [`EngineKind`]).
    pub engine: EngineKind,
}

impl SimConfig {
    /// Checks every invariant the simulator relies on, returning a
    /// human-readable message for the first violation: `offered_load`
    /// finite and in `[0, 1]`, `warmup <= cycles`, and `cycles`
    /// representable in the 32 bits [`Packet`] stores `injected_at` in
    /// (a longer run would silently truncate injection timestamps and
    /// underflow the latency subtraction).
    pub fn validate(&self) -> Result<(), String> {
        if !self.offered_load.is_finite() {
            return Err(format!(
                "offered load must be finite, got {}",
                self.offered_load
            ));
        }
        if !(0.0..=1.0).contains(&self.offered_load) {
            return Err(format!("offered load {} out of range", self.offered_load));
        }
        if self.warmup > self.cycles {
            return Err(format!(
                "warmup ({}) exceeds the simulated cycles ({})",
                self.warmup, self.cycles
            ));
        }
        if self.cycles as u64 > u64::from(u32::MAX) {
            return Err(format!(
                "cycles ({}) exceeds {} — Packet stores injection timestamps in 32 bits",
                self.cycles,
                u32::MAX
            ));
        }
        Ok(())
    }
}

/// Which scheduling core drives a run.
///
/// Both engines execute the *same* simulation — identical decision
/// order, identical RNG draw order, identical floating-point fold order
/// — so their statistics are byte-identical (the differential contract
/// of `tests/equivalence.rs`). The synchronous engine pays O(network
/// size) every cycle; the event-driven engine pays for the work that
/// actually happens, which is what makes low-load runs on large
/// networks affordable (the `BENCH_sim.json` headline of this axis).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum EngineKind {
    /// Visit every stage, every waiting source, and every switch scan
    /// position each cycle (the original engine; the statistics oracle
    /// the event engine is differenced against).
    #[default]
    Synchronous,
    /// Wake exactly the stages, sources, and timelines that can make
    /// progress, driven by a time-ordered [`EventQueue`] and a dense
    /// arena of the non-empty link buffers.
    EventDriven,
}

/// How a switch assigns a nonstraight-bound packet to one of its two
/// nonstraight output buffers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RoutingPolicy {
    /// Always the state-`C` link (the embedded-ICube behavior): no spare
    /// links are ever used. The paper's implicit baseline.
    FixedC,
    /// The paper's SSDT load balancing: choose the nonstraight buffer with
    /// fewer queued messages (ties go to the state-`C` link).
    SsdtBalance,
    /// Choose the sign uniformly at random (a policy-free control).
    RandomSign,
    /// Sender-computed TSDT tags: at injection the sender consults the
    /// global blockage map and attaches a REROUTE-derived 2n-bit tag;
    /// switches follow the tag's state bits verbatim (paper, Section 4:
    /// "the tag can be computed by the message sender which is assumed to
    /// know the location of faulty links and switches"). Unroutable pairs
    /// are dropped at the source.
    TsdtSender,
    /// Power-of-two-choices over the exact pivot-theory candidate set
    /// (Lemma A2.1: at most two routable switches per stage, so sampling
    /// `d = 2` candidates *is* exhaustive): compare the occupancy of the
    /// `{ΔC, ΔC̄}` buffers and take the least loaded, ties keeping the
    /// state-`C` link deterministically (no switch-state flip, no RNG —
    /// deliberately stateless, unlike [`RoutingPolicy::SsdtBalance`]).
    /// `d = 1` degenerates to ΔC-always with fault evasion. The `sticky`
    /// variant is Dynamic Alternative Routing's retention rule: keep the
    /// per-`(stage, switch)` previous choice until that buffer fills (or
    /// faults away), and only then re-balance — trading a little peak
    /// balance for route stability.
    DChoice {
        /// Candidates examined (1 or 2; 2 is the full pivot pair).
        d: u8,
        /// Keep the previous choice until its buffer is full.
        sticky: bool,
    },
}

/// How packets move through the network.
///
/// The engine defaults to store-and-forward (whole packets hop between
/// link buffers); [`Simulator::with_wormhole_switching`] turns a run into
/// wormhole mode, where this enum is the sweep/CLI-facing description of
/// the choice.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SwitchingMode {
    /// Whole packets buffered per link (the default; byte-identical to
    /// the engine before wormhole mode existed).
    #[default]
    StoreForward,
    /// Packets split into `flits` flits that pipeline over a chain of
    /// reserved link lanes (`lanes` lanes per link).
    Wormhole {
        /// Flits per packet (>= 1).
        flits: u32,
        /// Lanes per link (>= 1).
        lanes: u32,
    },
}

/// One wormhole-mode packet in flight: `flits` flits pipelined over the
/// chain of reserved link lanes in `held` (front = tail-most lane, back =
/// the head's lane). The routing-relevant fields mirror [`Packet`]'s
/// exactly — a worm *is* a packet whose body occupies links instead of a
/// buffer slot. Invariant while live: `flits == ejected + held.len() +
/// pending`.
#[derive(Debug)]
struct Worm {
    /// Destination output port.
    dest: u32,
    /// Cycle the packet was injected (head-injection end of the latency
    /// measurement; the other end is tail ejection).
    injected_at: u32,
    /// Sender-computed TSDT state word, if any (same semantics as
    /// [`Packet::tag_state`]).
    tag_state: Option<u32>,
    /// Flits still waiting at the source (not yet on any link).
    pending: u32,
    /// Flits already ejected at the output port.
    ejected: u32,
    /// Stage of the link the head flit currently occupies.
    head_stage: u32,
    /// Switch (or output port, at the last stage) the head's link leads
    /// to.
    head_to: u32,
    /// Head has claimed its output port and is draining one flit/cycle.
    ejecting: bool,
    /// Retired (delivered or killed); awaiting free-list recycling.
    dead: bool,
    /// Global reservation-table lane slots held, rear first.
    held: VecDeque<u32>,
}

/// All wormhole-mode state, boxed into an `Option` on the [`Simulator`]:
/// `None` means store-and-forward and costs the hot path exactly one
/// branch at the top of [`Simulator::step`], so the store-and-forward
/// instruction sequence — and therefore its statistics — stays
/// byte-identical to the pre-wormhole engine (enforced by
/// `tests/parity.rs`).
#[derive(Debug)]
struct WormState {
    /// Flits per packet.
    flits: u32,
    /// Lane reservations, indexed like the queue arena (`Link::flat_index
    /// * lanes + lane`).
    reservations: ReservationTable,
    /// Worm storage; indices are worm ids, recycled through `free`.
    worms: Vec<Worm>,
    /// Retired worm ids available for reuse.
    free: Vec<u32>,
    /// Live worm ids in admission order (the advance loop rotates its
    /// starting point over this list for fairness, like the switch scan).
    order: Vec<u32>,
    /// Per output port: the worm currently ejecting there
    /// ([`ReservationTable::FREE`] when the port is idle). One flit
    /// drains per port per cycle — the wormhole analogue of the exit
    /// column's single-packet acceptance.
    eject_hold: Vec<u32>,
}

/// Test-support snapshot of the wormhole lane ledger
/// ([`Simulator::lane_ledger`]): the reservation table's holders and
/// held counts plus every live worm's held lane slots, copied out so a
/// checker can cross-validate them cycle by cycle.
#[derive(Debug, Clone)]
pub struct LaneLedger {
    /// Lanes per link.
    pub lanes: usize,
    /// Per global lane slot (`link * lanes + lane`): the holding worm's
    /// id, or `None` for a free lane.
    pub holders: Vec<Option<u32>>,
    /// Per link: held-lane count from the table's metadata records.
    pub held: Vec<usize>,
    /// Per live worm, in admission order: `(worm id, held lane slots)`
    /// (rear first).
    pub live: Vec<(u32, Vec<u32>)>,
}

/// Steady-state convergence detector ([`Simulator::with_convergence`]):
/// the run is cut into consecutive `window`-cycle windows, each window's
/// mean latency is computed from the deltas of the cumulative latency
/// counters, and the run stops early once two consecutive *non-empty*
/// windows agree within a relative tolerance — the long-run regime the
/// paper's steady-state analysis assumes has been reached, and further
/// cycles only re-measure it. Works identically under both engines: the
/// event engine clamps its idle-time jumps to the next window boundary,
/// so the poll sequence — and therefore the stop cycle and every
/// statistic — is byte-identical to the synchronous engine's.
#[derive(Debug)]
struct ConvergeState {
    /// Window length in cycles (> 0).
    window: u64,
    /// Relative tolerance: converged when
    /// `|mean - prev_mean| <= tol * prev_mean`.
    tol: f64,
    /// Next window boundary (the cycle the next poll fires at).
    next: u64,
    /// Cumulative `latency_sum` at the previous boundary.
    prev_sum: u64,
    /// Cumulative `latency_count` at the previous boundary.
    prev_count: u64,
    /// The previous non-empty window's mean latency, once one exists.
    prev_mean: Option<f64>,
}

/// What the switching decision did with a packet this cycle.
enum Decision {
    /// Enqueue on this output link.
    Enqueue(LinkKind),
    /// All usable buffers are full; retry next cycle.
    Stall,
    /// Every link that could carry this packet is fault-blocked; the packet
    /// is undeliverable under this policy.
    Drop,
}

/// Uniform occupancy view over the three buffer backends a switching
/// decision balances across: the flat FIFO [`QueueArena`]
/// (store-and-forward, occupancy = queued packets), the
/// [`ReservationTable`] (wormhole, occupancy = held lanes), and the event
/// engine's dense [`ActiveArena`]. One [`PolicyCtx::decide`] body serves
/// all three hot paths through this trait; monomorphization turns each
/// instantiation back into direct calls, so the generated code — and the
/// byte-exact statistics the parity goldens pin — match the three
/// hand-specialized copies this replaced.
trait BufferView {
    /// Current occupancy of buffer slot `q` (queue length, held lanes).
    fn occupancy(&self, q: usize) -> usize;
    /// Can slot `q` not accept another packet (or worm head)?
    fn is_full(&self, q: usize) -> bool;
}

impl BufferView for QueueArena {
    #[inline]
    fn occupancy(&self, q: usize) -> usize {
        self.len(q)
    }
    #[inline]
    fn is_full(&self, q: usize) -> bool {
        QueueArena::is_full(self, q)
    }
}

impl BufferView for ReservationTable {
    #[inline]
    fn occupancy(&self, q: usize) -> usize {
        self.held(q)
    }
    #[inline]
    fn is_full(&self, q: usize) -> bool {
        ReservationTable::is_full(self, q)
    }
}

impl BufferView for ActiveArena {
    #[inline]
    fn occupancy(&self, q: usize) -> usize {
        self.len(q)
    }
    #[inline]
    fn is_full(&self, q: usize) -> bool {
        ActiveArena::is_full(self, q)
    }
}

/// The routing-relevant slice of a [`Simulator`], reborrowed field by
/// field so the decision logic can mutate policy state (SSDT switch
/// states, the RNG, reroute counters, sticky choices) while the caller
/// still holds a shared borrow of whichever buffer backend is in play.
/// Built inline by the three `decide*` wrappers; never stored.
struct PolicyCtx<'a> {
    policy: RoutingPolicy,
    n: usize,
    dynamic: bool,
    blockages: &'a BlockageMap,
    lut: &'a RouteLut,
    stats: &'a mut SimStats,
    states: &'a mut NetworkState,
    rng: &'a mut StdRng,
    /// Per-`(stage, switch)` sticky d-choice memory: 0 = no previous
    /// choice, else `LinkKind::index() + 1`. Empty unless the policy is
    /// `DChoice { sticky: true, .. }`.
    sticky: &'a mut [u8],
}

impl PolicyCtx<'_> {
    /// Decides which output buffer of switch `sw` at `stage` a packet
    /// bound for `dest` (carrying TSDT state word `tag_state`, if any)
    /// enters. This is the single shared body behind
    /// [`Simulator::decide`], [`Simulator::decide_worm`] and
    /// [`Simulator::decide_active`] — the policy match lives here once,
    /// parameterized over the occupancy backend.
    fn decide<B: BufferView>(
        &mut self,
        buffers: &B,
        stage: usize,
        sw: usize,
        dest: u32,
        tag_state: Option<u32>,
    ) -> Decision {
        let qbase = (stage * self.n + sw) * 3;
        if let Some(tag_state) = tag_state {
            // TSDT: the tag dictates the link (destination bit from the
            // address, state bit from the sender-computed state word); the
            // sender avoided every fault *it knew about*, so only queue
            // pressure can delay the packet — unless a transient fault
            // arrived after the tag was computed, in which case the link
            // the tag insists on may now be down and the packet is
            // undeliverable under this policy (TSDT switches have no
            // rerouting discretion).
            let state = SwitchState::from_bit(bit(tag_state as usize, stage));
            let kind = kind_for(bit(sw, stage), bit(dest as usize, stage), state);
            if self.blockages.is_blocked(Link::new(stage, sw, kind)) {
                debug_assert!(
                    self.dynamic,
                    "sender-computed tag steered into a blocked link in a static run"
                );
                return Decision::Drop;
            }
            return if buffers.is_full(qbase + kind.index()) {
                Decision::Stall
            } else {
                Decision::Enqueue(kind)
            };
        }
        let t = bit(dest as usize, stage);
        let entry = self.lut.entry(stage, sw, t);
        if entry.is_straight() {
            // Straight-bound: no alternative exists (Theorem 3.2).
            if !entry.c_free() {
                return Decision::Drop;
            }
            return if buffers.is_full(qbase + LinkKind::Straight.index()) {
                Decision::Stall
            } else {
                Decision::Enqueue(LinkKind::Straight)
            };
        }
        // Nonstraight-bound: the two signed links both reach the
        // destination (Theorem 3.2); the policy picks. Candidates are a
        // fixed-size inline array in preference order.
        let c_kind = entry.c_kind();
        let cbar_kind = entry.cbar_kind();
        let mut candidates = [c_kind, cbar_kind];
        let count = match self.policy {
            RoutingPolicy::FixedC => {
                if !entry.c_free() {
                    return Decision::Drop;
                }
                1
            }
            RoutingPolicy::SsdtBalance => match (entry.c_free(), entry.cbar_free()) {
                (false, false) => return Decision::Drop,
                (true, false) => 1,
                (false, true) => {
                    // Forced off the preferred ΔC sign onto the spare —
                    // the paper's single-nonstraight-blockage reroute.
                    self.stats.reroutes += 1;
                    candidates[0] = cbar_kind;
                    1
                }
                (true, true) => {
                    let len0 = buffers.occupancy(qbase + c_kind.index());
                    let len1 = buffers.occupancy(qbase + cbar_kind.index());
                    // Shorter buffer wins; on ties the switch state decides
                    // and then flips, alternating the sign (the SSDT state
                    // flip reused as a balancing device).
                    let prefer_second = match len0.cmp(&len1) {
                        std::cmp::Ordering::Less => false,
                        std::cmp::Ordering::Greater => true,
                        std::cmp::Ordering::Equal => {
                            let state = self.states.get(stage, sw);
                            self.states.flip(stage, sw);
                            // State C keeps the ΔC (first) candidate.
                            state == SwitchState::Cbar
                        }
                    };
                    if prefer_second {
                        candidates.swap(0, 1);
                    }
                    2
                }
            },
            RoutingPolicy::RandomSign => match (entry.c_free(), entry.cbar_free()) {
                (false, false) => return Decision::Drop,
                (true, false) => 1,
                (false, true) => {
                    // Forced off the preferred ΔC sign onto the spare —
                    // the paper's single-nonstraight-blockage reroute.
                    self.stats.reroutes += 1;
                    candidates[0] = cbar_kind;
                    1
                }
                (true, true) => {
                    if self.rng.gen_bool(0.5) {
                        candidates.swap(0, 1);
                    }
                    2
                }
            },
            RoutingPolicy::DChoice { d, sticky } => {
                match (entry.c_free(), entry.cbar_free()) {
                    (false, false) => return Decision::Drop,
                    (true, false) => 1,
                    (false, true) => {
                        // Forced off the preferred ΔC sign onto the spare —
                        // the same single-nonstraight-blockage reroute SSDT
                        // counts.
                        self.stats.reroutes += 1;
                        candidates[0] = cbar_kind;
                        1
                    }
                    (true, true) if d >= 2 => {
                        let slot = stage * self.n + sw;
                        // Sticky (Dynamic Alternative Routing): keep the
                        // remembered sign while its buffer accepts; a full
                        // buffer is the congestion threshold that releases
                        // the route.
                        let prev = if sticky {
                            match self.sticky[slot] {
                                0 => None,
                                k => Some(LinkKind::from_index(k as usize - 1)),
                            }
                        } else {
                            None
                        };
                        let choice = match prev {
                            Some(kind) if !buffers.is_full(qbase + kind.index()) => kind,
                            _ => {
                                // Balanced allocation over the exact
                                // candidate pair: least loaded wins, ties
                                // keep ΔC (deterministic, stateless).
                                let len0 = buffers.occupancy(qbase + c_kind.index());
                                let len1 = buffers.occupancy(qbase + cbar_kind.index());
                                if len1 < len0 {
                                    cbar_kind
                                } else {
                                    c_kind
                                }
                            }
                        };
                        if sticky {
                            self.sticky[slot] = choice.index() as u8 + 1;
                        }
                        if choice != c_kind {
                            candidates.swap(0, 1);
                        }
                        2
                    }
                    // d = 1: sample only the preferred ΔC candidate.
                    (true, true) => 1,
                }
            }
            RoutingPolicy::TsdtSender => {
                // Unreachable: TsdtSender packets always carry a tag and
                // are handled above; a tagless packet under this policy is
                // a bug.
                unreachable!("TsdtSender packets must carry a tag")
            }
        };
        for &kind in &candidates[..count] {
            if !buffers.is_full(qbase + kind.index()) {
                return Decision::Enqueue(kind);
            }
        }
        Decision::Stall
    }
}

/// How the sender-side TSDT tag cache reacts to a link *repair* event
/// ([`Simulator::with_tag_repair`]). Failures always invalidate the whole
/// cache — a stale tag could steer straight into the new fault — but a
/// repair only ever *unblocks* paths, so the two modes differ in how
/// quickly senders rediscover them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum TagRepair {
    /// Repairs lazily invalidate exactly the affected lines (refusals and
    /// bent tags, which a wider map could improve); clean all-C tags are
    /// repair-invariant and keep hitting. Byte-identical routing behavior
    /// to a full invalidation on repair — see DESIGN.md §13 — at O(1)
    /// per event and per lookup. The default.
    #[default]
    Aware,
    /// Repairs do not touch the cache: senders replay stale refusals and
    /// bent tags until the *next failure's* epoch turnover recomputes
    /// them. Still correct (a stale outcome never routes into a fault —
    /// the map only got wider) but slower to recover; the E20 baseline.
    Blind,
}

/// A direct-mapped cache of sender-computed TSDT tags, one way per
/// `(source, dest mod SLOTS)` line. REROUTE is a pure function of the
/// blockage map and the `(source, dest)` pair, so a hit replays the
/// stored outcome — including the "provably disconnected, refuse at the
/// source" case — without rerunning the algorithm. Every line is stamped
/// with the *map epoch* it was computed under; a transient link failure
/// bumps the epoch ([`TagCache::invalidate_all`], O(1)), so tags derived
/// from a superseded map can never be replayed (a stale tag could steer
/// straight into the new fault, which would be a misroute or a bogus
/// drop). Link *repairs* only widen the map, so they advance a separate
/// repair epoch instead ([`TagCache::note_repair`]): clean all-C tags —
/// REROUTE starts from the all-C default path and only bends it around
/// blockages, so a tag with zero state bits proves that path was already
/// free — stay valid forever, while refusals and bent tags from before
/// the repair miss lazily and recompute ([`Lookup::RepairStale`]).
#[derive(Debug)]
struct TagCache {
    /// Cache lines per source (a power of two; 0 when the cache is off).
    slots: usize,
    /// The current blockage-map version; lines from older epochs miss.
    epoch: u64,
    /// The current repair version; lines from older repair epochs miss
    /// when their outcome could have improved. Frozen under
    /// [`TagRepair::Blind`].
    repair_epoch: u64,
    /// Whether repair events advance `repair_epoch`.
    repair: TagRepair,
    /// `sources * slots` lines; `None` = cold line.
    lines: Vec<Option<TagLine>>,
}

/// One occupied [`TagCache`] line: `(dest, epoch, repair_epoch, outcome)`,
/// where a `None` outcome is a cached refusal (provably disconnected).
type TagLine = (u32, u64, u64, Option<TsdtTag>);

/// One [`TagCache::lookup`] result.
enum Lookup {
    /// The line holds a valid outcome for this `(source, dest)` pair.
    Hit(Option<TsdtTag>),
    /// Cold line, conflicting destination, or a superseded map epoch.
    Miss,
    /// The line's refusal or bent tag predates a repair that could have
    /// improved it — the repair-aware re-tag trigger
    /// (`retags_on_repair`).
    RepairStale,
}

impl TagCache {
    /// Lines per source: the whole destination space for small networks,
    /// capped so large networks stay at a few MiB.
    const MAX_SLOTS: usize = 256;

    fn new(size: Size) -> Self {
        let slots = size.n().min(Self::MAX_SLOTS);
        TagCache {
            slots,
            epoch: 0,
            repair_epoch: 0,
            repair: TagRepair::default(),
            lines: vec![None; size.n() * slots],
        }
    }

    /// The empty cache for policies that never consult it.
    fn off() -> Self {
        TagCache {
            slots: 0,
            epoch: 0,
            repair_epoch: 0,
            repair: TagRepair::default(),
            lines: Vec::new(),
        }
    }

    #[inline]
    fn line(&self, source: usize, dest: usize) -> usize {
        source * self.slots + (dest & (self.slots - 1))
    }

    #[inline]
    fn lookup(&self, source: usize, dest: usize) -> Lookup {
        match self.lines[self.line(source, dest)] {
            Some((d, epoch, repaired, outcome)) if d as usize == dest && epoch == self.epoch => {
                // A clean tag (zero state bits) pins the blockage-free
                // all-C path REROUTE starts from; no amount of repair
                // changes what it would recompute. Anything else could
                // improve under a wider map.
                if repaired == self.repair_epoch
                    || matches!(outcome, Some(tag) if tag.state_bits() == 0)
                {
                    Lookup::Hit(outcome)
                } else {
                    Lookup::RepairStale
                }
            }
            _ => Lookup::Miss,
        }
    }

    #[inline]
    fn put(&mut self, source: usize, dest: usize, outcome: Option<TsdtTag>) {
        let line = self.line(source, dest);
        self.lines[line] = Some((dest as u32, self.epoch, self.repair_epoch, outcome));
    }

    /// Invalidates every line by advancing the map epoch — called when a
    /// link *fails* mid-run (the map narrowed; every cached outcome is
    /// suspect).
    #[inline]
    fn invalidate_all(&mut self) {
        self.epoch += 1;
    }

    /// Notes a link *repair* (the map widened): advances the repair
    /// epoch, lazily invalidating exactly the lines whose outcome could
    /// have improved. A no-op under [`TagRepair::Blind`].
    #[inline]
    fn note_repair(&mut self) {
        if self.repair == TagRepair::Aware {
            self.repair_epoch += 1;
        }
    }
}

/// All event-driven-engine state, boxed into an `Option` on the
/// [`Simulator`]: `None` means synchronous and costs the hot path
/// exactly one branch at the top of [`Simulator::step`] (the same
/// pattern `WormState` uses), so the synchronous instruction sequence —
/// and therefore its statistics — stays byte-identical to the
/// pre-event-engine code (enforced by `tests/parity.rs`).
#[derive(Debug)]
struct EventState {
    /// Pending work, ordered by `(cycle, within-cycle phase priority)`.
    queue: EventQueue,
    /// The link buffers, stored densely by non-empty queue (replaces the
    /// flat `QueueArena` on this engine; identical accounting).
    active: ActiveArena,
    /// Per-output-switch accept counters, epoch-stamped so an `Advance`
    /// event gets a logically-zeroed array without an O(N) fill:
    /// `epoch << 8 | count`, read as 0 when the stamp is stale.
    accepted: Vec<u64>,
    /// Current accept-counter epoch (bumped once per `Advance` event,
    /// mirroring the synchronous per-stage `accepted` fill).
    epoch: u64,
    /// Per-stage cycle an `Advance(stage)` is already scheduled for
    /// (`u64::MAX` = none) — pushes are deduplicated against this stamp.
    advance_sched: Vec<u64>,
    /// Cycle an `Admission` is already scheduled for.
    admission_sched: u64,
    /// Cycle a `Fault` is already scheduled for.
    fault_sched: u64,
    /// Earliest cycle a workload `Arrivals` is already scheduled for
    /// (`u64::MAX` = none). Unlike the other stamps this tracks the
    /// *earliest* pending wake rather than the only one: a delivery hook
    /// can pull the wake-up earlier than a previously armed timer, and
    /// the superseded later event then fires as a harmless spurious poll
    /// ([`WorkloadSource::poll`] is a strict no-op on non-due cycles).
    workload_sched: u64,
}

impl EventState {
    /// Schedules `Advance(stage)` at `cycle` unless one is already
    /// pending for that cycle.
    #[inline]
    fn schedule_advance(&mut self, stage: usize, cycle: u64) {
        if self.advance_sched[stage] != cycle {
            self.advance_sched[stage] = cycle;
            self.queue.push(cycle, Event::Advance(stage as u16));
        }
    }

    /// Schedules `Admission` at `cycle` unless one is already pending
    /// for that cycle.
    #[inline]
    fn schedule_admission(&mut self, cycle: u64) {
        if self.admission_sched != cycle {
            self.admission_sched = cycle;
            self.queue.push(cycle, Event::Admission);
        }
    }
}

/// Closed-loop workload state, boxed into an `Option` on the
/// [`Simulator`] (the `WormState`/`EventState` pattern): `None` means
/// open-loop and costs the arrivals phase exactly one branch, so the
/// open-loop instruction sequence — and therefore every pre-workload
/// parity golden — stays byte-identical (enforced by `tests/parity.rs`).
#[derive(Debug)]
struct WlState {
    /// The pull-based injection source the engines drive.
    source: Box<dyn WorkloadSource>,
    /// Dedicated workload RNG stream: think times and server choices
    /// never perturb the engine RNG, so a closed-loop run's routing tie
    /// breaks draw the same sequence under both engines.
    rng: StdRng,
    /// Injection staging buffer, reused across cycles. Delivery hooks
    /// append response emissions here mid-cycle; the arrivals phase
    /// appends the poll's issues after them and drains the lot, so both
    /// engines inject in the identical order.
    buffer: Vec<Injection>,
}

/// The simulator: a store-and-forward IADM network with one bounded FIFO
/// per output link and one packet transfer per link per cycle. Each switch
/// honors the IADM's `SingleInput` capability: it accepts at most one
/// incoming packet per cycle (rotating priority among its input links).
#[derive(Debug)]
pub struct Simulator {
    config: SimConfig,
    policy: RoutingPolicy,
    pattern: TrafficPattern,
    blockages: Arc<BlockageMap>,
    /// Precomputed `(stage, switch, tag bit)` decision table with the
    /// blockage map baked in. Held behind an `Arc` so campaigns can share
    /// one table across every run over the same realized scenario
    /// ([`Simulator::with_shared_lut`]); a fault timeline patches it
    /// copy-on-write via `Arc::make_mut`, so a run that never churns
    /// never clones it — and a run built the ordinary way owns the sole
    /// reference, making `make_mut` free.
    lut: Arc<RouteLut>,
    /// All link buffers; queue index = `Link::flat_index`.
    queues: QueueArena,
    /// Queued packets per `(stage, switch)` (all three kinds), letting the
    /// advance loop skip empty switches.
    switch_load: Vec<u32>,
    /// One bit per `(stage, switch)`: set iff `switch_load > 0`. The
    /// advance loop walks set bits with `trailing_zeros` instead of
    /// testing all `N` switches per stage — the per-switch branch on a
    /// ~70%-idle load pattern mispredicts constantly and dominated the
    /// cycle cost at N = 1024.
    switch_bits: Vec<u64>,
    /// Reused scratch for the rotated live-switch order (no per-cycle
    /// allocation).
    live_scratch: Vec<u32>,
    /// Queued packets per stage, letting the advance loop skip stages.
    stage_load: Vec<u64>,
    /// Per-cycle accept counters, reused across cycles (no allocation).
    accepted: Vec<u8>,
    source_queues: Vec<VecDeque<Packet>>,
    /// One bit per source: set iff its source queue is non-empty, so the
    /// admission loop only visits waiting sources.
    source_bits: Vec<u64>,
    /// Sender-side TSDT tag cache (populated only under `TsdtSender`).
    tag_cache: TagCache,
    /// Scheduled mid-run link fail/repair events (sorted by cycle).
    timeline: FaultTimeline,
    /// Next unapplied event in `timeline`.
    timeline_cursor: usize,
    /// `true` iff the timeline is non-empty. Every transient-fault code
    /// path in the hot loop is gated on this (or on `links_down_now`), so
    /// a static run executes the exact pre-timeline instruction sequence
    /// (byte-identical statistics, enforced by `tests/parity.rs`).
    dynamic: bool,
    /// Links currently down *due to timeline events* (static blockages
    /// never count: no packet is ever queued behind one).
    links_down_now: usize,
    /// Per-link cycle the current outage began (`u64::MAX` = link up).
    /// Empty unless `dynamic`.
    down_since: Vec<u64>,
    /// Per-link total cycles spent down (closed outages; open ones are
    /// folded in by `finish`). Empty unless `dynamic`.
    down_cycles: Vec<u64>,
    /// Per-link flag: did this link fail at least once? Empty unless
    /// `dynamic`.
    ever_down: Vec<bool>,
    rng: StdRng,
    stats: SimStats,
    cycle: u64,
    /// Wormhole-mode state; `None` = store-and-forward (the default).
    wormhole: Option<WormState>,
    /// How wormhole reservations pick among a link's free lanes
    /// ([`Simulator::with_lane_arbitration`]). Pure lane tie-breaking —
    /// every statistic is lane-invariant (see [`LaneArbitration`]) —
    /// and inert outside wormhole mode.
    lane_arb: LaneArbitration,
    /// Event-driven-engine state; `None` = synchronous (the default).
    event: Option<Box<EventState>>,
    /// Closed-loop workload state; `None` = open-loop Bernoulli arrivals
    /// (the default).
    workload: Option<Box<WlState>>,
    /// Links that transitioned *down* during this cycle's
    /// [`Simulator::apply_due_events`] (flat indices) — the wormhole
    /// teardown pass kills every worm holding a lane of one. Only
    /// populated in wormhole mode; always empty on the store-and-forward
    /// path.
    downed_scratch: Vec<usize>,
    /// Packets a switch may accept per cycle: 1 for IADM-style
    /// single-input switches, 3 for Gamma-style crossbars.
    accept_limit: u8,
    /// Per-switch SSDT states used by the balancing policy to alternate
    /// the nonstraight sign on queue-length ties — the paper's state
    /// concept applied to load balancing.
    states: NetworkState,
    /// Per-`(stage, switch)` sticky d-choice memory (0 = no previous
    /// choice, else `LinkKind::index() + 1`). Allocated only under
    /// `DChoice { sticky: true, .. }`; empty — and therefore invisible
    /// to the hot path — for every other policy.
    sticky: Vec<u8>,
    /// Steady-state convergence detector; `None` = fixed-horizon run
    /// (the default), costing the run loop exactly one branch per cycle.
    converge: Option<ConvergeState>,
}

impl Simulator {
    /// Creates a simulator with no link faults.
    pub fn new(config: SimConfig, policy: RoutingPolicy, pattern: TrafficPattern) -> Self {
        Self::with_blockages(config, policy, pattern, BlockageMap::new(config.size))
    }

    /// Creates a simulator whose links in `blockages` are permanently
    /// faulty (packets never enter them).
    ///
    /// Accepts either an owned [`BlockageMap`] or an
    /// `Arc<BlockageMap>`, so campaigns running many simulations over the
    /// same fault scenario can share one map instead of cloning it per
    /// run.
    ///
    /// # Panics
    ///
    /// Panics if [`SimConfig::validate`] fails or if the blockage map is
    /// for a different size.
    pub fn with_blockages(
        config: SimConfig,
        policy: RoutingPolicy,
        pattern: TrafficPattern,
        blockages: impl Into<Arc<BlockageMap>>,
    ) -> Self {
        Self::with_fault_timeline(
            config,
            policy,
            pattern,
            blockages,
            FaultTimeline::empty(config.size),
        )
    }

    /// Creates a simulator that additionally applies `timeline`'s link
    /// fail/repair events between cycles: before each cycle's routing
    /// decisions, every event scheduled at or before the current cycle is
    /// folded into the blockage map, the affected switch's [`RouteLut`]
    /// entries are re-derived in place, and the sender-side TSDT tag
    /// cache is invalidated (tags computed against the superseded map
    /// must not be replayed). An empty timeline reproduces
    /// [`Simulator::with_blockages`] byte-for-byte.
    ///
    /// # Panics
    ///
    /// Panics if [`SimConfig::validate`] fails, or if the blockage map or
    /// timeline is for a different size.
    pub fn with_fault_timeline(
        config: SimConfig,
        policy: RoutingPolicy,
        pattern: TrafficPattern,
        blockages: impl Into<Arc<BlockageMap>>,
        timeline: FaultTimeline,
    ) -> Self {
        let blockages: Arc<BlockageMap> = blockages.into();
        let lut = Arc::new(RouteLut::new(config.size, &blockages));
        Self::with_shared_lut(config, policy, pattern, blockages, lut, timeline)
    }

    /// Creates a simulator over *shared immutable bases*: a blockage map
    /// and a [`RouteLut`] already built for it, both behind `Arc`s so a
    /// campaign can build them once per realized scenario and hand every
    /// run a pointer instead of paying `O(topology)` setup per run. The
    /// run is byte-identical to one built via
    /// [`Simulator::with_fault_timeline`] over the same map.
    ///
    /// The table is only ever touched copy-on-write: a static run reads
    /// the shared allocation for its whole lifetime, while a run whose
    /// `timeline` fires clones map and table on the first event and
    /// patches its private copies — the caller's bases are never
    /// modified.
    ///
    /// # Panics
    ///
    /// Panics if [`SimConfig::validate`] fails, or if the blockage map,
    /// table or timeline is for a different size. In debug builds,
    /// additionally panics unless `lut` matches a fresh build against
    /// `blockages` (the sharing contract).
    pub fn with_shared_lut(
        config: SimConfig,
        policy: RoutingPolicy,
        pattern: TrafficPattern,
        blockages: impl Into<Arc<BlockageMap>>,
        lut: Arc<RouteLut>,
        timeline: FaultTimeline,
    ) -> Self {
        if let Err(msg) = config.validate() {
            panic!("{msg}");
        }
        let blockages: Arc<BlockageMap> = blockages.into();
        assert_eq!(lut.size(), config.size, "route table size mismatch");
        debug_assert!(
            lut.matches(&blockages),
            "shared RouteLut does not match the blockage map"
        );
        assert_eq!(blockages.size(), config.size, "blockage map size mismatch");
        assert_eq!(timeline.size(), config.size, "fault timeline size mismatch");
        let size = config.size;
        let dynamic = !timeline.is_empty();
        let outage_slots = if dynamic { Link::slot_count(size) } else { 0 };
        let event = if config.engine == EngineKind::EventDriven {
            let mut queue = EventQueue::new(size.stages() as u16);
            // Seed the schedule: arrivals fire every cycle while load is
            // offered (each source consumes one RNG draw per cycle either
            // way), and the first timeline event fires at its exact cycle
            // so the outage clocks match the synchronous engine's.
            if config.offered_load > 0.0 && config.cycles > 0 {
                queue.push(0, Event::Arrivals);
            }
            let mut fault_sched = u64::MAX;
            if let Some(first) = timeline.events().first() {
                fault_sched = first.cycle;
                queue.push(first.cycle, Event::Fault);
            }
            Some(Box::new(EventState {
                queue,
                active: ActiveArena::new(Link::slot_count(size), config.queue_capacity),
                accepted: vec![0; size.n()],
                epoch: 0,
                advance_sched: vec![u64::MAX; size.stages()],
                admission_sched: u64::MAX,
                fault_sched,
                workload_sched: u64::MAX,
            }))
        } else {
            None
        };
        Simulator {
            rng: StdRng::seed_from_u64(config.seed),
            stats: SimStats {
                ports: size.n(),
                ..SimStats::default()
            },
            lut,
            // The event engine keeps its buffers in the dense
            // `ActiveArena`; give it a zero-queue flat arena instead of a
            // dead O(network) allocation.
            queues: QueueArena::new(
                if event.is_some() {
                    0
                } else {
                    Link::slot_count(size)
                },
                config.queue_capacity,
            ),
            switch_load: vec![0; size.stages() * size.n()],
            switch_bits: vec![0; size.stages() * size.n().div_ceil(64)],
            live_scratch: Vec::with_capacity(size.n()),
            stage_load: vec![0; size.stages()],
            accepted: vec![0; size.n()],
            source_queues: vec![VecDeque::new(); size.n()],
            source_bits: vec![0; size.n().div_ceil(64)],
            tag_cache: if policy == RoutingPolicy::TsdtSender {
                TagCache::new(size)
            } else {
                TagCache::off()
            },
            timeline,
            timeline_cursor: 0,
            dynamic,
            links_down_now: 0,
            down_since: vec![u64::MAX; outage_slots],
            down_cycles: vec![0; outage_slots],
            ever_down: vec![false; outage_slots],
            config,
            policy,
            pattern,
            blockages,
            cycle: 0,
            wormhole: None,
            lane_arb: LaneArbitration::default(),
            event,
            workload: None,
            downed_scratch: Vec::new(),
            accept_limit: 1,
            states: NetworkState::all_c(size),
            sticky: if matches!(policy, RoutingPolicy::DChoice { sticky: true, .. }) {
                vec![0; size.stages() * size.n()]
            } else {
                Vec::new()
            },
            converge: None,
        }
    }

    /// Switches become `3x3` crossbars (the Gamma network's switch
    /// capability): each switch accepts up to three packets per cycle, one
    /// per input link. Topology and routing are unchanged — exactly the
    /// IADM/Gamma relationship of the paper's introduction.
    #[must_use]
    pub fn with_crossbar_switches(mut self) -> Self {
        self.accept_limit = 3;
        self
    }

    /// Switches the run to wormhole mode: every packet becomes a worm of
    /// `flits` flits whose head reserves one lane per traversed link
    /// (`lanes` lanes per link), body flits pipeline behind it, and the
    /// tail releases lanes as it passes. A blocked head stalls *in place*
    /// holding its reservations — the paper's busy-link blockage — and
    /// SSDT/TSDT rerouting applies at head-advance time. A timeline
    /// failure of a reserved link kills the whole worm (counted as an
    /// outage drop); flit conservation still balances, enforced by
    /// `tests/wormhole.rs`. Latency is head-injection to tail-ejection.
    ///
    /// `queue_capacity` is ignored in this mode (links hold lanes, not
    /// packet buffers), as is [`Simulator::with_crossbar_switches`].
    ///
    /// # Panics
    ///
    /// Panics if `flits == 0` or `lanes == 0`.
    #[must_use]
    pub fn with_wormhole_switching(mut self, flits: u32, lanes: u32) -> Self {
        assert!(flits > 0, "a worm needs at least one flit");
        assert!(lanes > 0, "a link needs at least one lane");
        assert!(
            self.workload.is_none(),
            "closed-loop workloads drive store-and-forward runs only"
        );
        let size = self.config.size;
        self.stats.flits_per_packet = u64::from(flits);
        self.wormhole = Some(WormState {
            flits,
            reservations: ReservationTable::with_arbitration(
                Link::slot_count(size),
                lanes as usize,
                self.lane_arb,
            ),
            worms: Vec::new(),
            free: Vec::new(),
            order: Vec::new(),
            eject_hold: vec![ReservationTable::FREE; size.n()],
        });
        self
    }

    /// Sets the lane-arbitration policy wormhole reservations use to pick
    /// among a link's free lanes (default: [`LaneArbitration::FirstFree`],
    /// byte-exact to the engine before arbitration was configurable).
    /// Composes with [`Simulator::with_wormhole_switching`] in either
    /// order; a no-op for store-and-forward runs, where no lanes exist.
    #[must_use]
    pub fn with_lane_arbitration(mut self, arb: LaneArbitration) -> Self {
        self.lane_arb = arb;
        if let Some(worm) = self.wormhole.as_mut() {
            debug_assert!(
                worm.order.is_empty(),
                "arbitration must be set before the run starts"
            );
            worm.reservations = ReservationTable::with_arbitration(
                worm.reservations.link_count(),
                worm.reservations.lanes(),
                arb,
            );
        }
        self
    }

    /// Sets how the sender-side TSDT tag cache reacts to link repair
    /// events (default: [`TagRepair::Aware`]). Inert for every policy but
    /// `TsdtSender`, and for runs whose timeline never repairs a link.
    #[must_use]
    pub fn with_tag_repair(mut self, repair: TagRepair) -> Self {
        self.tag_cache.repair = repair;
        self
    }

    /// Applies a [`SwitchingMode`] value (the sweep/CLI plumbing form of
    /// [`Simulator::with_wormhole_switching`]).
    #[must_use]
    pub fn with_switching_mode(self, mode: SwitchingMode) -> Self {
        match mode {
            SwitchingMode::StoreForward => self,
            SwitchingMode::Wormhole { flits, lanes } => self.with_wormhole_switching(flits, lanes),
        }
    }

    /// Attaches the workload a [`WorkloadSpec`] describes, seeded with
    /// `seed` (an independent stream — derive it from the run seed with
    /// [`iadm_rng::mix`] so it never collides with the engine stream).
    /// The [`WorkloadSpec::OpenLoop`] compatibility spec attaches
    /// nothing: the engine keeps its inline Bernoulli arrivals phase and
    /// the run is byte-identical to one that never heard of workloads.
    ///
    /// # Panics
    ///
    /// Panics if the spec fails [`WorkloadSpec::validate`], or (for
    /// closed specs) on the conditions of
    /// [`Simulator::with_workload_source`].
    #[must_use]
    pub fn with_workload(self, spec: &WorkloadSpec, seed: u64) -> Self {
        if let Err(msg) = spec.validate(self.config.size) {
            panic!("{msg}");
        }
        match spec.build(self.config.size, self.config.warmup as u64) {
            None => self,
            Some(source) => self.with_workload_source(source, seed),
        }
    }

    /// Attaches a live closed-loop [`WorkloadSource`]: the source owns
    /// injection (polled once per cycle as the arrivals phase, fed
    /// delivery/loss feedback per tracked packet), drawing from its own
    /// `seed`ed RNG stream. Under the event engine the source's
    /// [`WorkloadSource::next_wake`] contract drives scheduling, so idle
    /// think spans cost nothing.
    ///
    /// # Panics
    ///
    /// Panics in wormhole mode (closed loops are store-and-forward only)
    /// or when the run offers open-loop load — a closed-loop run's
    /// traffic *is* the workload, so `offered_load` must be `0.0`.
    #[must_use]
    pub fn with_workload_source(mut self, source: Box<dyn WorkloadSource>, seed: u64) -> Self {
        assert!(
            self.wormhole.is_none(),
            "closed-loop workloads drive store-and-forward runs only"
        );
        assert!(
            self.config.offered_load == 0.0,
            "closed-loop workloads require offered_load = 0 (the workload owns injection)"
        );
        let wl = Box::new(WlState {
            source,
            rng: StdRng::seed_from_u64(seed),
            buffer: Vec::new(),
        });
        if let Some(ev) = self.event.as_mut() {
            // Seed the event schedule with the source's first wake (the
            // constructor's open-loop `Arrivals` seeding never fires for
            // closed-loop runs: their offered load is 0).
            if let Some(due) = wl.source.next_wake(0) {
                if due < self.config.cycles as u64 {
                    ev.workload_sched = due;
                    ev.queue.push(due, Event::Arrivals);
                }
            }
        }
        self.workload = Some(wl);
        self
    }

    /// Enables steady-state termination: every `window` cycles the run
    /// compares the window's mean latency against the previous non-empty
    /// window's and stops once they agree within relative tolerance
    /// `tol`, recording the stop cycle as
    /// [`SimStats::converged_at_cycle`]. A run that never converges (or
    /// whose windows never carry samples) executes the full fixed
    /// horizon, with `converged_at_cycle` left at its `0` sentinel.
    ///
    /// Detection is engine-independent: both engines poll at exactly the
    /// window boundaries with identical cumulative counters, so an
    /// early-stopped run's statistics stay byte-identical between
    /// [`EngineKind::Synchronous`] and [`EngineKind::EventDriven`].
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero or `tol` is negative or non-finite.
    #[must_use]
    pub fn with_convergence(mut self, window: u64, tol: f64) -> Self {
        assert!(window > 0, "convergence window must be positive");
        assert!(
            tol.is_finite() && tol >= 0.0,
            "convergence tolerance must be finite and non-negative, got {tol}"
        );
        self.converge = Some(ConvergeState {
            window,
            tol,
            next: window,
            prev_sum: 0,
            prev_count: 0,
            prev_mean: None,
        });
        self
    }

    /// Convergence poll, called with `self.cycle` positioned at a cycle
    /// boundary (after the boundary cycle's work): returns `true` when
    /// the run just crossed a window boundary *and* the last two
    /// non-empty windows' mean latencies agree within tolerance. Stamps
    /// [`SimStats::converged_at_cycle`] on the deciding boundary.
    #[inline]
    fn converge_poll(&mut self) -> bool {
        let Some(cv) = self.converge.as_mut() else {
            return false;
        };
        if self.cycle < cv.next {
            return false;
        }
        let count = self.stats.latency_count - cv.prev_count;
        let mean = if count > 0 {
            Some((self.stats.latency_sum - cv.prev_sum) as f64 / count as f64)
        } else {
            // An empty window (warmup, idle traffic) carries no evidence;
            // it neither converges nor becomes the comparison baseline.
            None
        };
        if let (Some(cur), Some(prev)) = (mean, cv.prev_mean) {
            if (cur - prev).abs() <= cv.tol * prev {
                self.stats.converged_at_cycle = cv.next;
                return true;
            }
        }
        cv.prev_sum = self.stats.latency_sum;
        cv.prev_count = self.stats.latency_count;
        if mean.is_some() {
            cv.prev_mean = mean;
        }
        cv.next += cv.window;
        false
    }

    /// Queue-arena index of the `kind` output link of switch `sw` at
    /// `stage` (= `Link::flat_index`, computed without building a `Link`).
    #[inline]
    fn queue_index(&self, stage: usize, sw: usize, kind: LinkKind) -> usize {
        (stage * self.config.size.n() + sw) * 3 + kind.index()
    }

    /// Applies every timeline event scheduled at or before the current
    /// cycle: folds the transition into the blockage map, re-derives the
    /// affected switch's two [`RouteLut`] entries, invalidates the TSDT
    /// tag cache (fully on a failure, lazily for the affected lines on a
    /// repair — see [`TagRepair`]), and keeps the per-link outage clocks. Packets already
    /// buffered on a failed link stay put until the repair (the advance
    /// loop skips downed queues); only packets whose *every* usable
    /// candidate is down get dropped, by the ordinary `decide` path.
    fn apply_due_events(&mut self) {
        while let Some(&event) = self.timeline.events().get(self.timeline_cursor) {
            if event.cycle > self.cycle {
                break;
            }
            self.timeline_cursor += 1;
            self.stats.fault_events += 1;
            let map = Arc::make_mut(&mut self.blockages);
            let changed = if event.up {
                map.unblock(event.link)
            } else {
                map.block(event.link)
            };
            if !changed {
                // Already in the target state (e.g. a scheduled failure
                // of a link the static map had blocked): nothing to do.
                continue;
            }
            Arc::make_mut(&mut self.lut).refresh_switch(
                event.link.stage,
                event.link.from,
                &self.blockages,
            );
            let idx = event.link.flat_index(self.config.size);
            if event.up {
                // The map only widened: repair-aware caches lazily re-tag
                // the affected lines, blind ones wait out epoch turnover.
                self.stats.repair_events += 1;
                self.tag_cache.note_repair();
                self.links_down_now -= 1;
                self.down_cycles[idx] += self.cycle - self.down_since[idx];
                self.down_since[idx] = u64::MAX;
            } else {
                // The map narrowed: every cached tag is suspect (a stale
                // one could steer into the new fault) — full epoch bump.
                self.tag_cache.invalidate_all();
                self.links_down_now += 1;
                self.down_since[idx] = self.cycle;
                self.ever_down[idx] = true;
                if self.wormhole.is_some() {
                    // Wormhole teardown pass input: only links that
                    // actually transitioned down (re-failing an already-
                    // blocked link kills nothing).
                    self.downed_scratch.push(idx);
                }
            }
        }
    }

    /// Counts a packet drop, attributing it to the current outage when
    /// any timeline-failed link is still down.
    #[inline]
    fn note_drop(&mut self) {
        self.stats.dropped += 1;
        if self.links_down_now > 0 {
            self.stats.dropped_during_outage += 1;
        }
    }

    /// Routes a workload-tracked packet's delivery to its source's
    /// completion hook (response emissions land in the staging buffer
    /// for this cycle's arrivals phase). No-op for open-loop packets —
    /// one predictable branch on the delivery path.
    #[inline]
    fn note_workload_delivery(&mut self, op: u32) {
        if op == NO_OP {
            return;
        }
        let wl = self
            .workload
            .as_deref_mut()
            .expect("op-stamped packet without a workload");
        wl.source
            .on_delivered(op, self.cycle, &mut wl.rng, &mut wl.buffer);
    }

    /// Routes a workload-tracked packet's loss (drop, refusal, or
    /// misroute) to its source's abort hook. No-op for open-loop packets.
    #[inline]
    fn note_workload_loss(&mut self, op: u32) {
        if op == NO_OP {
            return;
        }
        let wl = self
            .workload
            .as_deref_mut()
            .expect("op-stamped packet without a workload");
        wl.source.on_lost(op, self.cycle, &mut wl.rng);
    }

    /// The closed-loop arrivals phase: polls the workload source (its
    /// issues land after any responses this cycle's delivery hooks
    /// staged) and admits every staged injection into its source queue,
    /// stamping each packet with its operation id. TSDT refusals feed
    /// straight back as losses. Returns whether any source queue gained
    /// a packet (the event engine arms admission on it).
    fn workload_arrivals(&mut self) -> bool {
        let mut wl = self
            .workload
            .take()
            .expect("workload_arrivals without a workload");
        wl.source.poll(self.cycle, &mut wl.rng, &mut wl.buffer);
        let mut any = false;
        for i in 0..wl.buffer.len() {
            let inj = wl.buffer[i];
            let (s, dest) = (inj.source as usize, inj.dest as usize);
            self.stats.injected += 1;
            if self.policy == RoutingPolicy::TsdtSender {
                match self.sender_tag(s, dest) {
                    Some(tag) => {
                        if tag.state_bits() != 0 {
                            self.stats.reroutes += 1;
                        }
                        self.source_queues[s]
                            .push_back(Packet::with_tag(dest, self.cycle, tag).with_op(inj.op));
                        self.source_bits[s >> 6] |= 1u64 << (s & 63);
                        any = true;
                    }
                    None => {
                        self.stats.refused += 1;
                        if inj.op != NO_OP {
                            wl.source.on_lost(inj.op, self.cycle, &mut wl.rng);
                        }
                    }
                }
            } else {
                self.source_queues[s].push_back(Packet::new(dest, self.cycle).with_op(inj.op));
                self.source_bits[s >> 6] |= 1u64 << (s & 63);
                any = true;
            }
        }
        wl.buffer.clear();
        self.workload = Some(wl);
        any
    }

    /// Decides which output buffer of switch `sw` at `stage` a packet
    /// bound for `dest` (carrying TSDT state word `tag_state`, if any)
    /// enters. Takes the two routing-relevant fields instead of the whole
    /// packet so callers can peek them through a borrow without copying
    /// the queued packet. Thin wrapper over the shared
    /// [`PolicyCtx::decide`] body, instantiated with the flat queue
    /// arena.
    fn decide(&mut self, stage: usize, sw: usize, dest: u32, tag_state: Option<u32>) -> Decision {
        let mut ctx = PolicyCtx {
            policy: self.policy,
            n: self.config.size.n(),
            dynamic: self.dynamic,
            blockages: &self.blockages,
            lut: &self.lut,
            stats: &mut self.stats,
            states: &mut self.states,
            rng: &mut self.rng,
            sticky: &mut self.sticky,
        };
        ctx.decide(&self.queues, stage, sw, dest, tag_state)
    }

    /// The sender-side TSDT tag for `(source, dest)`: the cached REROUTE
    /// outcome when the direct-mapped line holds it, otherwise a fresh
    /// REROUTE whose outcome (tag, or "provably disconnected") fills the
    /// line. A miss caused purely by an intervening link repair is the
    /// repair-aware re-tag path, counted in `retags_on_repair`.
    fn sender_tag(&mut self, source: usize, dest: usize) -> Option<TsdtTag> {
        match self.tag_cache.lookup(source, dest) {
            Lookup::Hit(outcome) => return outcome,
            Lookup::Miss => {}
            Lookup::RepairStale => self.stats.retags_on_repair += 1,
        }
        let outcome =
            iadm_core::reroute::reroute(self.config.size, &self.blockages, source, dest).ok();
        self.tag_cache.put(source, dest, outcome);
        outcome
    }

    /// Notes one more queued packet at `(stage, sw)` (both the counter
    /// and the occupancy bit).
    #[inline]
    fn load_inc(&mut self, stage: usize, sw: usize) {
        let n = self.config.size.n();
        let slot = &mut self.switch_load[stage * n + sw];
        if *slot == 0 {
            self.switch_bits[stage * n.div_ceil(64) + (sw >> 6)] |= 1u64 << (sw & 63);
        }
        *slot += 1;
    }

    /// Notes one less queued packet at `(stage, sw)`, clearing the
    /// occupancy bit when the switch drains.
    #[inline]
    fn load_dec(&mut self, stage: usize, sw: usize) {
        let n = self.config.size.n();
        let slot = &mut self.switch_load[stage * n + sw];
        *slot -= 1;
        if *slot == 0 {
            self.switch_bits[stage * n.div_ceil(64) + (sw >> 6)] &= !(1u64 << (sw & 63));
        }
    }

    /// Runs one cycle: deliver/advance from the last stage backward, then
    /// inject, then sample occupancies.
    pub fn step(&mut self) {
        // The single event-engine branch on the synchronous path,
        // mirroring the wormhole branch below: the synchronous
        // instruction sequence is untouched when `event` is `None`.
        if self.event.is_some() {
            self.step_event();
            return;
        }
        // The single wormhole branch on the store-and-forward path: the
        // entire instruction sequence below is untouched when `wormhole`
        // is `None`.
        if self.wormhole.is_some() {
            self.step_wormhole();
            return;
        }
        // Fault dynamics apply between cycles: every routing decision of
        // this cycle sees the post-event map.
        if self.dynamic {
            self.apply_due_events();
        }
        let size = self.config.size;
        let n = size.n();
        let stages = size.stages();
        // N is a power of two, so the rotating switch scan wraps with a
        // mask instead of a hardware divide (this runs N * n times per
        // cycle whether or not any packet moves). The kind rotation is
        // likewise hoisted out of the scan.
        let mask = n - 1;
        let sw_offset = self.cycle as usize & mask;
        let order_offset = (self.cycle % 3) as usize;
        let kind_order = [
            LinkKind::ALL[order_offset],
            LinkKind::ALL[(order_offset + 1) % 3],
            LinkKind::ALL[(order_offset + 2) % 3],
        ];
        // Advance queue heads, last stage first so a packet moves at most
        // one hop per cycle.
        for stage in (0..stages).rev() {
            if self.stage_load[stage] == 0 {
                // Nothing queued anywhere in this stage: no head could
                // exist, so the original scan would have decided nothing.
                continue;
            }
            // Rotating input priority per receiving switch.
            self.accepted[..n].fill(0);
            let row = stage * n;
            let exit = stage + 1 == stages;
            // Gather the busy switches in the same rotated order the
            // all-switch scan visited them: `sw_offset, .., n-1, 0, ..,
            // sw_offset-1`, skipping idle ones. Walking set bits with
            // `trailing_zeros` replaces `N` badly-predicted per-switch
            // branches with one iteration per busy switch. The set is
            // fixed for the whole stage scan — only the *current*
            // switch's load changes while it is being processed.
            let words = n.div_ceil(64);
            let wrow = stage * words;
            let mut live = std::mem::take(&mut self.live_scratch);
            live.clear();
            let start_word = sw_offset >> 6;
            let start_bit = sw_offset & 63;
            let mut wi = start_word;
            let mut w = self.switch_bits[wrow + wi] & (!0u64 << start_bit);
            loop {
                while w != 0 {
                    live.push(((wi << 6) + w.trailing_zeros() as usize) as u32);
                    w &= w - 1;
                }
                wi += 1;
                if wi == words {
                    break;
                }
                w = self.switch_bits[wrow + wi];
            }
            for wi in 0..=start_word {
                let mut w = self.switch_bits[wrow + wi];
                if wi == start_word {
                    w &= !(!0u64 << start_bit);
                }
                while w != 0 {
                    live.push(((wi << 6) + w.trailing_zeros() as usize) as u32);
                    w &= w - 1;
                }
            }
            for &sw_live in &live {
                let sw = sw_live as usize;
                let qbase = (row + sw) * 3;
                // Occupied-kind mask in this cycle's rotated kind order;
                // iterating its set bits visits exactly the queues the
                // rotated kind loop would have, without three
                // data-dependent empty-check branches per switch.
                let mut kmask = 0u32;
                for (i, kind) in kind_order.iter().enumerate() {
                    kmask |= u32::from(!self.queues.is_empty(qbase + kind.index())) << i;
                }
                while kmask != 0 {
                    let kind = kind_order[kmask.trailing_zeros() as usize];
                    kmask &= kmask - 1;
                    let q = qbase + kind.index();
                    // A transient failure can strand already-buffered
                    // packets behind a downed link; they wait out the
                    // outage (store-and-forward keeps them, it does not
                    // re-queue them). Static blockages never reach here:
                    // `decide` refuses to enqueue behind them, so
                    // `links_down_now` gates the check to zero cost on
                    // the static path.
                    if self.links_down_now > 0
                        && self.blockages.is_blocked(Link::new(stage, sw, kind))
                    {
                        continue;
                    }
                    let to = kind.target(size, stage, sw);
                    // Switches accept `accept_limit` packets per cycle
                    // (1 = IADM single-input, 3 = Gamma crossbar); output
                    // switches are switches too (the paper's "extra column
                    // appended at the end").
                    if self.accepted[to] >= self.accept_limit {
                        continue;
                    }
                    if exit {
                        // Exit at the output column.
                        self.accepted[to] += 1;
                        let packet = self.queues.pop_carried(q);
                        self.load_dec(stage, sw);
                        self.stage_load[stage] -= 1;
                        if to == packet.dest as usize {
                            self.stats.delivered += 1;
                            if packet.injected_at as u64 >= self.config.warmup as u64 {
                                let lat = self.cycle + 1 - packet.injected_at as u64;
                                self.stats.latency_sum += lat;
                                self.stats.latency_count += 1;
                                self.stats.latency_max = self.stats.latency_max.max(lat);
                                self.stats.latency_histogram.record(lat);
                            }
                            self.note_workload_delivery(packet.op);
                        } else {
                            self.stats.misrouted += 1;
                            self.note_workload_loss(packet.op);
                        }
                        continue;
                    }
                    // Peek only the routing fields through the borrow; the
                    // 32-byte packet is copied once, inside pop -> push.
                    let head = self.queues.head(q).expect("non-empty queue has a head");
                    let (dest, tag_state) = (head.dest, head.tag_state());
                    match self.decide(stage + 1, to, dest, tag_state) {
                        Decision::Enqueue(next_kind) => {
                            let packet = self.queues.pop_carried(q);
                            self.load_dec(stage, sw);
                            self.stage_load[stage] -= 1;
                            let next_q = (row + n + to) * 3 + next_kind.index();
                            let ok = self.queues.push(next_q, packet);
                            debug_assert!(ok, "decide() guaranteed space");
                            self.load_inc(stage + 1, to);
                            self.stage_load[stage + 1] += 1;
                            self.accepted[to] += 1;
                        }
                        Decision::Stall => {}
                        Decision::Drop => {
                            let packet = self.queues.pop(q).expect("non-empty queue has a head");
                            self.load_dec(stage, sw);
                            self.stage_load[stage] -= 1;
                            self.note_drop();
                            self.note_workload_loss(packet.op);
                        }
                    }
                }
            }
            self.live_scratch = live;
        }
        // Source admission: each stage-0 switch takes at most the head of
        // its source queue. Waiting sources are walked via the occupancy
        // bitset (ascending order, same as the old 0..n scan).
        for wi in 0..n.div_ceil(64) {
            let mut w = self.source_bits[wi];
            while w != 0 {
                let s = (wi << 6) + w.trailing_zeros() as usize;
                w &= w - 1;
                let head = self.source_queues[s]
                    .front()
                    .expect("source bit set for an empty queue");
                let (dest, tag_state) = (head.dest, head.tag_state());
                match self.decide(0, s, dest, tag_state) {
                    Decision::Enqueue(kind) => {
                        let packet = self.source_queues[s].pop_front().unwrap();
                        if self.source_queues[s].is_empty() {
                            self.source_bits[wi] &= !(1u64 << (s & 63));
                        }
                        let q = self.queue_index(0, s, kind);
                        let ok = self.queues.push(q, packet);
                        debug_assert!(ok, "decide() guaranteed space");
                        self.load_inc(0, s);
                        self.stage_load[0] += 1;
                    }
                    Decision::Stall => {}
                    Decision::Drop => {
                        let packet = self.source_queues[s].pop_front().unwrap();
                        if self.source_queues[s].is_empty() {
                            self.source_bits[wi] &= !(1u64 << (s & 63));
                        }
                        self.note_drop();
                        self.note_workload_loss(packet.op);
                    }
                }
            }
        }
        // New arrivals: the closed-loop source when one is attached,
        // otherwise the open-loop Bernoulli draw.
        if self.workload.is_some() {
            self.workload_arrivals();
        } else {
            for s in 0..n {
                if self.rng.gen_bool(self.config.offered_load) {
                    let dest = self.pattern.destination(size, s, &mut self.rng);
                    self.stats.injected += 1;
                    if self.policy == RoutingPolicy::TsdtSender {
                        // The sender consults the controller's blockage map
                        // (through the per-source tag cache).
                        match self.sender_tag(s, dest) {
                            Some(tag) => {
                                // A nonzero state word means REROUTE steered
                                // around at least one blockage.
                                if tag.state_bits() != 0 {
                                    self.stats.reroutes += 1;
                                }
                                self.source_queues[s]
                                    .push_back(Packet::with_tag(dest, self.cycle, tag));
                                self.source_bits[s >> 6] |= 1u64 << (s & 63);
                            }
                            None => {
                                // No blockage-free path exists: refused at the
                                // source.
                                self.stats.refused += 1;
                            }
                        }
                    } else {
                        self.source_queues[s].push_back(Packet::new(dest, self.cycle));
                        self.source_bits[s >> 6] |= 1u64 << (s & 63);
                    }
                }
            }
        }
        // Occupancy sampling: one shared tick; per-queue sums catch up
        // lazily inside the arena.
        self.queues.tick();
        self.cycle += 1;
    }

    /// One wormhole-mode cycle: teardown (kill worms on freshly-downed
    /// reserved links), advance every live worm at most one hop (eject a
    /// flit, advance the head one link, or stall in place holding
    /// reservations), retire the dead, admit new worms from the source
    /// queues, then inject arrivals. The arrival phase draws the RNG in
    /// exactly the store-and-forward order, so a wormhole run's traffic
    /// trace is the same trace the store-and-forward run would have seen.
    fn step_wormhole(&mut self) {
        self.downed_scratch.clear();
        if self.dynamic {
            self.apply_due_events();
        }
        let mut ws = self
            .wormhole
            .take()
            .expect("step_wormhole without wormhole state");
        let size = self.config.size;
        let n = size.n();
        let stages = size.stages();
        // Teardown: a downed reserved link kills every worm holding one
        // of its lanes — the worm's flits can no longer pipeline across
        // the failure, so the whole packet is an outage drop.
        let downed = std::mem::take(&mut self.downed_scratch);
        for &q in &downed {
            let lanes = ws.reservations.lanes();
            for slot in q * lanes..(q + 1) * lanes {
                if let Some(id) = ws.reservations.holder(slot) {
                    self.kill_worm(&mut ws, id);
                }
            }
        }
        self.downed_scratch = downed;
        // Advance, rotating the starting worm like the switch scan
        // rotates its starting switch, so no worm is permanently favored
        // in lane contention. The per-cycle accept scratch guards each
        // output port's one-flit-per-cycle drain rate: a port freed by a
        // finishing worm mid-loop cannot eject a second flit this cycle.
        self.accepted[..n].fill(0);
        let live = ws.order.len();
        if live > 0 {
            let start = self.cycle as usize % live;
            for i in 0..live {
                let id = ws.order[(start + i) % live];
                let w = &ws.worms[id as usize];
                if w.dead {
                    continue;
                }
                if w.ejecting {
                    self.eject_worm_flit(&mut ws, id);
                    continue;
                }
                let (head_stage, head_to) = (w.head_stage as usize, w.head_to as usize);
                let (dest, tag_state) = (w.dest, w.tag_state);
                if head_stage + 1 == stages {
                    // Head on a final-stage link: claim the output port
                    // and start draining, or stall until it frees up (a
                    // port that already drained a flit this cycle is
                    // claimable only next cycle).
                    if ws.eject_hold[head_to] == ReservationTable::FREE
                        && self.accepted[head_to] == 0
                    {
                        ws.eject_hold[head_to] = id;
                        ws.worms[id as usize].ejecting = true;
                        self.eject_worm_flit(&mut ws, id);
                    }
                    continue;
                }
                match self.decide_worm(&ws.reservations, head_stage + 1, head_to, dest, tag_state) {
                    Decision::Enqueue(kind) => {
                        let q = self.queue_index(head_stage + 1, head_to, kind);
                        let slot = ws
                            .reservations
                            .reserve(q, id)
                            .expect("decide_worm guaranteed a free lane");
                        let w = &mut ws.worms[id as usize];
                        w.held.push_back(slot as u32);
                        w.head_stage = (head_stage + 1) as u32;
                        w.head_to = kind.target(size, head_stage + 1, head_to) as u32;
                        shift_rear(&mut ws, id);
                    }
                    Decision::Stall => {
                        // Blocked heads hold their reservations in place —
                        // the busy-link blockage the paper's REROUTE
                        // motivates.
                    }
                    Decision::Drop => self.kill_worm(&mut ws, id),
                }
            }
        }
        // Retire dead worms into the free list (ids recycle; `held`
        // capacity is retained across reuse).
        ws.order.retain(|&id| {
            if ws.worms[id as usize].dead {
                ws.free.push(id);
                false
            } else {
                true
            }
        });
        // Source admission: each waiting source tries to launch its head
        // packet's head flit onto a stage-0 lane.
        for wi in 0..n.div_ceil(64) {
            let mut w = self.source_bits[wi];
            while w != 0 {
                let s = (wi << 6) + w.trailing_zeros() as usize;
                w &= w - 1;
                let head = self.source_queues[s]
                    .front()
                    .expect("source bit set for an empty queue");
                let (dest, tag_state) = (head.dest, head.tag_state());
                match self.decide_worm(&ws.reservations, 0, s, dest, tag_state) {
                    Decision::Enqueue(kind) => {
                        let packet = self.source_queues[s].pop_front().unwrap();
                        if self.source_queues[s].is_empty() {
                            self.source_bits[wi] &= !(1u64 << (s & 63));
                        }
                        let id = alloc_worm(&mut ws, &packet);
                        let q = self.queue_index(0, s, kind);
                        let slot = ws
                            .reservations
                            .reserve(q, id)
                            .expect("decide_worm guaranteed a free lane");
                        let worm = &mut ws.worms[id as usize];
                        worm.held.push_back(slot as u32);
                        worm.head_stage = 0;
                        worm.head_to = kind.target(size, 0, s) as u32;
                        shift_rear(&mut ws, id);
                        ws.order.push(id);
                    }
                    Decision::Stall => {}
                    Decision::Drop => {
                        self.source_queues[s].pop_front();
                        if self.source_queues[s].is_empty() {
                            self.source_bits[wi] &= !(1u64 << (s & 63));
                        }
                        self.note_drop();
                        self.stats.flits_dropped += u64::from(ws.flits);
                    }
                }
            }
        }
        // New arrivals: identical RNG draw sequence to store-and-forward.
        for s in 0..n {
            if self.rng.gen_bool(self.config.offered_load) {
                let dest = self.pattern.destination(size, s, &mut self.rng);
                self.stats.injected += 1;
                self.stats.flits_injected += u64::from(ws.flits);
                if self.policy == RoutingPolicy::TsdtSender {
                    match self.sender_tag(s, dest) {
                        Some(tag) => {
                            if tag.state_bits() != 0 {
                                self.stats.reroutes += 1;
                            }
                            self.source_queues[s]
                                .push_back(Packet::with_tag(dest, self.cycle, tag));
                            self.source_bits[s >> 6] |= 1u64 << (s & 63);
                        }
                        None => {
                            self.stats.refused += 1;
                            self.stats.flits_refused += u64::from(ws.flits);
                        }
                    }
                } else {
                    self.source_queues[s].push_back(Packet::new(dest, self.cycle));
                    self.source_bits[s >> 6] |= 1u64 << (s & 63);
                }
            }
        }
        // Lane-occupancy sampling, mirroring the arena's shared tick.
        ws.reservations.tick();
        self.wormhole = Some(ws);
        self.cycle += 1;
    }

    /// [`Simulator::decide`]'s wormhole twin: the shared
    /// [`PolicyCtx::decide`] body instantiated with lane availability
    /// (`ReservationTable`) in place of buffer space, so SSDT and
    /// d-choice balance *held-lane* counts and TSDT tags steer worms the
    /// way they steer packets.
    fn decide_worm(
        &mut self,
        res: &ReservationTable,
        stage: usize,
        sw: usize,
        dest: u32,
        tag_state: Option<u32>,
    ) -> Decision {
        let mut ctx = PolicyCtx {
            policy: self.policy,
            n: self.config.size.n(),
            dynamic: self.dynamic,
            blockages: &self.blockages,
            lut: &self.lut,
            stats: &mut self.stats,
            states: &mut self.states,
            rng: &mut self.rng,
            sticky: &mut self.sticky,
        };
        ctx.decide(res, stage, sw, dest, tag_state)
    }

    /// One event-driven cycle. A cycle with no due events is *idle*: by
    /// the scheduling invariants (every phase that could make progress
    /// has an event pending), the synchronous engine would have decided
    /// nothing and drawn no randomness during it, so only the occupancy
    /// sample counter needs to advance.
    fn step_event(&mut self) {
        let mut ev = self.event.take().expect("step_event without event state");
        if ev.queue.peek_cycle() != Some(self.cycle) {
            if let Some(ws) = self.wormhole.as_mut() {
                ws.reservations.tick();
            } else {
                ev.active.tick();
            }
            self.cycle += 1;
        } else if self.wormhole.is_some() {
            self.step_event_wormhole(&mut ev);
        } else {
            self.step_event_cycle(&mut ev);
        }
        self.event = Some(ev);
    }

    /// Dispatches every event due this cycle in phase-priority order —
    /// exactly the synchronous engine's phase order: fault application,
    /// stage advances from the last stage backward, source admission,
    /// arrivals. Phases with no due event are phases the synchronous
    /// engine would have no-opped (nothing queued, nothing waiting, no
    /// timeline event due), so skipping them changes no decision and no
    /// RNG draw.
    fn step_event_cycle(&mut self, ev: &mut EventState) {
        while ev.queue.peek_cycle() == Some(self.cycle) {
            let (_, event) = ev.queue.pop().expect("peeked event vanished");
            match event {
                Event::Fault => self.event_fault(ev),
                Event::WormAdvance => unreachable!("WormAdvance on the store-and-forward path"),
                Event::Advance(stage) => self.event_advance(ev, stage as usize),
                Event::Admission => self.event_admission(ev),
                Event::Arrivals => {
                    if self.workload.is_some() {
                        self.event_workload(ev);
                    } else {
                        self.event_arrivals(ev);
                    }
                }
            }
        }
        ev.active.tick();
        self.cycle += 1;
    }

    /// Wormhole mode under the event engine: a due cycle runs the
    /// synchronous wormhole step verbatim (worms move every cycle by
    /// construction, so there is nothing to event within the cycle), and
    /// the heap's only job is to skip fully-idle cycles — no live worms,
    /// no waiting sources, no arrivals, no due timeline event.
    fn step_event_wormhole(&mut self, ev: &mut EventState) {
        while ev.queue.peek_cycle() == Some(self.cycle) {
            ev.queue.pop();
        }
        self.step_wormhole();
        let next = self.cycle;
        let ws = self
            .wormhole
            .as_ref()
            .expect("step_wormhole preserved the wormhole state");
        if !ws.order.is_empty() {
            ev.queue.push(next, Event::WormAdvance);
        }
        if self.source_bits.iter().any(|&w| w != 0) {
            ev.queue.push(next, Event::Admission);
        }
        if self.config.offered_load > 0.0 && next < self.config.cycles as u64 {
            ev.queue.push(next, Event::Arrivals);
        }
        self.schedule_fault(ev);
    }

    /// Applies the due timeline events (the cycle matches the next
    /// unapplied event by construction, so the outage clocks record the
    /// exact cycles the synchronous engine records) and schedules the
    /// following one.
    fn event_fault(&mut self, ev: &mut EventState) {
        self.apply_due_events();
        self.schedule_fault(ev);
    }

    /// Schedules a `Fault` at the next unapplied timeline event's cycle,
    /// deduplicated against the pending one.
    fn schedule_fault(&mut self, ev: &mut EventState) {
        if let Some(event) = self.timeline.events().get(self.timeline_cursor) {
            if ev.fault_sched != event.cycle {
                ev.fault_sched = event.cycle;
                ev.queue.push(event.cycle, Event::Fault);
            }
        }
    }

    /// [`Simulator::step`]'s per-stage advance, replayed event-style: the
    /// identical rotated live-switch scan, kind rotation, accept limits,
    /// and decision sequence, against the dense arena. Any packet left in
    /// the stage (stalled or beyond the accept limit) re-arms the stage
    /// for the next cycle; any packet moved forward arms the next stage —
    /// which already fired this cycle (stages advance last-first), so the
    /// hand-off lands exactly one cycle later, as in the synchronous scan.
    fn event_advance(&mut self, ev: &mut EventState, stage: usize) {
        if self.stage_load[stage] == 0 {
            // The stage drained between scheduling and firing (e.g. a
            // later-stage event of an earlier cycle consumed it): the
            // synchronous engine's stage skip.
            return;
        }
        let size = self.config.size;
        let n = size.n();
        let stages = size.stages();
        let mask = n - 1;
        let sw_offset = self.cycle as usize & mask;
        let order_offset = (self.cycle % 3) as usize;
        let kind_order = [
            LinkKind::ALL[order_offset],
            LinkKind::ALL[(order_offset + 1) % 3],
            LinkKind::ALL[(order_offset + 2) % 3],
        ];
        // One epoch bump = the synchronous `accepted[..n].fill(0)`.
        ev.epoch += 1;
        let epoch = ev.epoch;
        let row = stage * n;
        let exit = stage + 1 == stages;
        // Rotated busy-switch gather, identical in output order to the
        // synchronous scan (see `step`). When the dense arena holds fewer
        // live queues *network-wide* than this stage's bitmap has words,
        // walking the arena and sorting by rotated index is cheaper than
        // scanning the bitmap — that is the event engine's design regime,
        // a handful of packets on a huge network. Both gathers produce
        // the busy switches in ascending rotated order, so the decision
        // sequence (and thus every golden) is unchanged.
        let words = n.div_ceil(64);
        let wrow = stage * words;
        let mut live = std::mem::take(&mut self.live_scratch);
        live.clear();
        if ev.active.live_count() <= words {
            ev.active.for_each_live(|q| {
                let sw_abs = q as usize / 3;
                if (row..row + n).contains(&sw_abs) {
                    live.push((sw_abs - row) as u32);
                }
            });
            // A switch with several live kind-queues appears once per
            // queue; equal rotated keys sort adjacent, so dedup collapses
            // them.
            live.sort_unstable_by_key(|&sw| (sw as usize).wrapping_sub(sw_offset) & mask);
            live.dedup();
        } else {
            let start_word = sw_offset >> 6;
            let start_bit = sw_offset & 63;
            let mut wi = start_word;
            let mut w = self.switch_bits[wrow + wi] & (!0u64 << start_bit);
            loop {
                while w != 0 {
                    live.push(((wi << 6) + w.trailing_zeros() as usize) as u32);
                    w &= w - 1;
                }
                wi += 1;
                if wi == words {
                    break;
                }
                w = self.switch_bits[wrow + wi];
            }
            for wi in 0..=start_word {
                let mut w = self.switch_bits[wrow + wi];
                if wi == start_word {
                    w &= !(!0u64 << start_bit);
                }
                while w != 0 {
                    live.push(((wi << 6) + w.trailing_zeros() as usize) as u32);
                    w &= w - 1;
                }
            }
        }
        for &sw_live in &live {
            let sw = sw_live as usize;
            let qbase = (row + sw) * 3;
            let mut kmask = 0u32;
            for (i, kind) in kind_order.iter().enumerate() {
                kmask |= u32::from(!ev.active.is_empty(qbase + kind.index())) << i;
            }
            while kmask != 0 {
                let kind = kind_order[kmask.trailing_zeros() as usize];
                kmask &= kmask - 1;
                let q = qbase + kind.index();
                if self.links_down_now > 0 && self.blockages.is_blocked(Link::new(stage, sw, kind))
                {
                    continue;
                }
                let to = kind.target(size, stage, sw);
                let acc = ev.accepted[to];
                let count = if acc >> 8 == epoch {
                    (acc & 0xFF) as u8
                } else {
                    0
                };
                if count >= self.accept_limit {
                    continue;
                }
                if exit {
                    ev.accepted[to] = (epoch << 8) | u64::from(count + 1);
                    let packet = ev.active.pop_carried(q);
                    self.load_dec(stage, sw);
                    self.stage_load[stage] -= 1;
                    if to == packet.dest as usize {
                        self.stats.delivered += 1;
                        if packet.injected_at as u64 >= self.config.warmup as u64 {
                            let lat = self.cycle + 1 - packet.injected_at as u64;
                            self.stats.latency_sum += lat;
                            self.stats.latency_count += 1;
                            self.stats.latency_max = self.stats.latency_max.max(lat);
                            self.stats.latency_histogram.record(lat);
                        }
                        self.note_workload_delivery(packet.op);
                    } else {
                        self.stats.misrouted += 1;
                        self.note_workload_loss(packet.op);
                    }
                    continue;
                }
                let head = ev.active.head(q).expect("non-empty queue has a head");
                let (dest, tag_state) = (head.dest, head.tag_state());
                match self.decide_active(&ev.active, stage + 1, to, dest, tag_state) {
                    Decision::Enqueue(next_kind) => {
                        let packet = ev.active.pop_carried(q);
                        self.load_dec(stage, sw);
                        self.stage_load[stage] -= 1;
                        let next_q = (row + n + to) * 3 + next_kind.index();
                        let ok = ev.active.push(next_q, packet);
                        debug_assert!(ok, "decide_active() guaranteed space");
                        self.load_inc(stage + 1, to);
                        self.stage_load[stage + 1] += 1;
                        ev.accepted[to] = (epoch << 8) | u64::from(count + 1);
                        ev.schedule_advance(stage + 1, self.cycle + 1);
                    }
                    Decision::Stall => {}
                    Decision::Drop => {
                        let packet = ev.active.pop(q).expect("non-empty queue has a head");
                        self.load_dec(stage, sw);
                        self.stage_load[stage] -= 1;
                        self.note_drop();
                        self.note_workload_loss(packet.op);
                    }
                }
            }
        }
        self.live_scratch = live;
        if self.stage_load[stage] > 0 {
            ev.schedule_advance(stage, self.cycle + 1);
        }
        if self.workload.is_some() {
            // Delivery hooks may have staged responses (fire the
            // arrivals phase later this cycle) or re-armed think timers.
            self.arm_workload(ev, self.cycle);
        }
    }

    /// [`Simulator::step`]'s source-admission phase, replayed
    /// event-style: the identical ascending waiting-source walk and
    /// decision sequence. An admitted packet arms stage 0 for the next
    /// cycle; a source left waiting re-arms admission.
    fn event_admission(&mut self, ev: &mut EventState) {
        let n = self.config.size.n();
        // Tracks whether any visited source keeps its bit set (stalled,
        // or drained only one of several queued packets) — the loop
        // visits every set bit, so this equals a full `source_bits`
        // re-scan without paying it.
        let mut left_waiting = false;
        for wi in 0..n.div_ceil(64) {
            let mut w = self.source_bits[wi];
            while w != 0 {
                let s = (wi << 6) + w.trailing_zeros() as usize;
                w &= w - 1;
                let head = self.source_queues[s]
                    .front()
                    .expect("source bit set for an empty queue");
                let (dest, tag_state) = (head.dest, head.tag_state());
                match self.decide_active(&ev.active, 0, s, dest, tag_state) {
                    Decision::Enqueue(kind) => {
                        let packet = self.source_queues[s].pop_front().unwrap();
                        if self.source_queues[s].is_empty() {
                            self.source_bits[wi] &= !(1u64 << (s & 63));
                        } else {
                            left_waiting = true;
                        }
                        let q = self.queue_index(0, s, kind);
                        let ok = ev.active.push(q, packet);
                        debug_assert!(ok, "decide_active() guaranteed space");
                        self.load_inc(0, s);
                        self.stage_load[0] += 1;
                        ev.schedule_advance(0, self.cycle + 1);
                    }
                    Decision::Stall => left_waiting = true,
                    Decision::Drop => {
                        let packet = self.source_queues[s].pop_front().unwrap();
                        if self.source_queues[s].is_empty() {
                            self.source_bits[wi] &= !(1u64 << (s & 63));
                        } else {
                            left_waiting = true;
                        }
                        self.note_drop();
                        self.note_workload_loss(packet.op);
                    }
                }
            }
        }
        if left_waiting {
            ev.schedule_admission(self.cycle + 1);
        }
        if self.workload.is_some() {
            // Loss hooks may have re-armed think timers.
            self.arm_workload(ev, self.cycle);
        }
    }

    /// [`Simulator::step`]'s arrival phase, replayed event-style: the
    /// identical Bernoulli draw per source (arrivals fire every cycle of
    /// the horizon while load is offered — each source consumes one draw
    /// whether or not a packet arrives, so skipping a cycle would shift
    /// every later draw). A new waiting source arms admission.
    fn event_arrivals(&mut self, ev: &mut EventState) {
        let n = self.config.size.n();
        let mut any = false;
        // Integer form of `gen_bool(p)`: the library draw compares
        // `(next_u64() >> 11) as f64 * 2^-53 < p`, and scaling both sides
        // by 2^53 (an exact power-of-two multiply) gives the equivalent
        // integer test `(next_u64() >> 11) < ceil(p * 2^53)` — same RNG
        // consumption, same accept set, no int-to-float conversion in the
        // engine's hottest per-source loop.
        let threshold = (self.config.offered_load * (1u64 << 53) as f64).ceil() as u64;
        // Run the Bernoulli scan on a local copy of the generator so the
        // 256-bit state lives in registers across the (overwhelmingly
        // miss-predicted-false) loop instead of round-tripping through
        // `self` on every draw; the state is written back below.
        let mut rng = self.rng.clone();
        for s in 0..n {
            if (rng.next_u64() >> 11) < threshold {
                let dest = self.pattern.destination(self.config.size, s, &mut rng);
                self.stats.injected += 1;
                if self.policy == RoutingPolicy::TsdtSender {
                    match self.sender_tag(s, dest) {
                        Some(tag) => {
                            if tag.state_bits() != 0 {
                                self.stats.reroutes += 1;
                            }
                            self.source_queues[s]
                                .push_back(Packet::with_tag(dest, self.cycle, tag));
                            self.source_bits[s >> 6] |= 1u64 << (s & 63);
                            any = true;
                        }
                        None => {
                            self.stats.refused += 1;
                        }
                    }
                } else {
                    self.source_queues[s].push_back(Packet::new(dest, self.cycle));
                    self.source_bits[s >> 6] |= 1u64 << (s & 63);
                    any = true;
                }
            }
        }
        self.rng = rng;
        if any {
            ev.schedule_admission(self.cycle + 1);
        }
        let next = self.cycle + 1;
        if next < self.config.cycles as u64 {
            ev.queue.push(next, Event::Arrivals);
        }
    }

    /// The closed-loop twin of [`Simulator::event_arrivals`]: runs the
    /// workload arrivals phase and re-arms the next wake. `Arrivals` is
    /// the last phase priority within a cycle, so responses staged by
    /// this cycle's delivery hooks inject this cycle — the synchronous
    /// phase order. A spurious fire (stamp superseded by an earlier
    /// wake, or a duplicate) polls harmlessly: the source's no-op
    /// contract guarantees zero draws and zero issues off-schedule.
    ///
    /// `#[cold]` keeps this call out of the open-loop dispatch loop's
    /// code layout: without it the workload branch in
    /// `step_event_cycle`'s `Arrivals` arm degrades the open-loop
    /// low-load ladder by ~35% at N = 8192 (measured; the arm inlines
    /// differently and the arrivals scan spills). Closed-loop runs pay
    /// one out-of-line call per poll, noise next to the poll itself.
    #[cold]
    fn event_workload(&mut self, ev: &mut EventState) {
        if ev.workload_sched == self.cycle {
            ev.workload_sched = u64::MAX;
        }
        let any = self.workload_arrivals();
        if any {
            ev.schedule_admission(self.cycle + 1);
        }
        self.arm_workload(ev, self.cycle + 1);
    }

    /// Schedules the workload's next `Arrivals`: this cycle when
    /// delivery hooks staged responses (the phase must still run before
    /// the cycle closes), otherwise at the source's declared next wake
    /// from `now` on. Pushes only when it would *advance* the earliest
    /// pending stamp — a later already-scheduled event stays queued and
    /// fires as a spurious no-op poll.
    fn arm_workload(&mut self, ev: &mut EventState, now: u64) {
        let wl = self
            .workload
            .as_deref()
            .expect("arm_workload without a workload");
        let due = if wl.buffer.is_empty() {
            match wl.source.next_wake(now) {
                Some(due) => due,
                None => return,
            }
        } else {
            self.cycle
        };
        if due >= self.config.cycles as u64 {
            return;
        }
        if ev.workload_sched > due {
            ev.workload_sched = due;
            ev.queue.push(due, Event::Arrivals);
        }
    }

    /// [`Simulator::decide`]'s event-engine twin: the shared
    /// [`PolicyCtx::decide`] body instantiated with the dense arena in
    /// place of the flat one.
    fn decide_active(
        &mut self,
        arena: &ActiveArena,
        stage: usize,
        sw: usize,
        dest: u32,
        tag_state: Option<u32>,
    ) -> Decision {
        let mut ctx = PolicyCtx {
            policy: self.policy,
            n: self.config.size.n(),
            dynamic: self.dynamic,
            blockages: &self.blockages,
            lut: &self.lut,
            stats: &mut self.stats,
            states: &mut self.states,
            rng: &mut self.rng,
            sticky: &mut self.sticky,
        };
        ctx.decide(arena, stage, sw, dest, tag_state)
    }

    /// Drains one flit of worm `id` into its output port, releasing the
    /// tail lane as the body shifts forward; on the last flit the worm
    /// retires and the delivery (and head-injection-to-tail-ejection
    /// latency) is recorded.
    fn eject_worm_flit(&mut self, ws: &mut WormState, id: u32) {
        let flits = ws.flits;
        ws.worms[id as usize].ejected += 1;
        self.accepted[ws.worms[id as usize].head_to as usize] += 1;
        self.stats.flits_delivered += 1;
        shift_rear(ws, id);
        let w = &mut ws.worms[id as usize];
        if w.ejected != flits {
            return;
        }
        debug_assert!(
            w.held.is_empty() && w.pending == 0,
            "fully-ejected worm still holds lanes"
        );
        w.dead = true;
        let (head_to, dest, injected_at) = (w.head_to as usize, w.dest as usize, w.injected_at);
        ws.eject_hold[head_to] = ReservationTable::FREE;
        if head_to == dest {
            self.stats.delivered += 1;
            if u64::from(injected_at) >= self.config.warmup as u64 {
                let lat = self.cycle + 1 - u64::from(injected_at);
                self.stats.latency_sum += lat;
                self.stats.latency_count += 1;
                self.stats.latency_max = self.stats.latency_max.max(lat);
                self.stats.latency_histogram.record(lat);
            }
        } else {
            self.stats.misrouted += 1;
        }
    }

    /// Kills worm `id`: releases every held lane, loses its remaining
    /// flits, and counts the packet as dropped (attributed to the outage
    /// when one is in progress, like any other drop).
    fn kill_worm(&mut self, ws: &mut WormState, id: u32) {
        if ws.worms[id as usize].dead {
            return;
        }
        let lost =
            u64::from(ws.worms[id as usize].pending) + ws.worms[id as usize].held.len() as u64;
        while let Some(slot) = ws.worms[id as usize].held.pop_front() {
            ws.reservations.release(slot as usize);
        }
        ws.worms[id as usize].pending = 0;
        ws.worms[id as usize].dead = true;
        if ws.worms[id as usize].ejecting {
            let head_to = ws.worms[id as usize].head_to as usize;
            ws.eject_hold[head_to] = ReservationTable::FREE;
        }
        self.stats.flits_dropped += lost;
        self.note_drop();
    }

    /// Flits currently inside the network or waiting in source queues
    /// (0 in store-and-forward mode). Live counterpart of the finalized
    /// `flits_in_flight` statistic, for per-cycle conservation checks.
    pub fn flits_in_flight(&self) -> u64 {
        let Some(ws) = &self.wormhole else {
            return 0;
        };
        let queued: u64 = self.source_queues.iter().map(|q| q.len() as u64).sum();
        let mut flits = queued * u64::from(ws.flits);
        for &id in &ws.order {
            let w = &ws.worms[id as usize];
            if !w.dead {
                flits += u64::from(w.pending) + w.held.len() as u64;
            }
        }
        flits
    }

    /// Test-support snapshot of the wormhole lane ledger (`None` in
    /// store-and-forward mode), for per-cycle invariant checks: every
    /// lane is FREE or held by exactly one live worm, per-link held
    /// counts equal the occupied-lane sums, and teardown releases
    /// everything (`tests/util`'s lane-ledger checker).
    pub fn lane_ledger(&self) -> Option<LaneLedger> {
        let ws = self.wormhole.as_ref()?;
        let res = &ws.reservations;
        Some(LaneLedger {
            lanes: res.lanes(),
            holders: (0..res.link_count() * res.lanes())
                .map(|slot| res.holder(slot))
                .collect(),
            held: (0..res.link_count()).map(|q| res.held(q)).collect(),
            live: ws
                .order
                .iter()
                .filter(|&&id| !ws.worms[id as usize].dead)
                .map(|&id| (id, ws.worms[id as usize].held.iter().copied().collect()))
                .collect(),
        })
    }

    /// Runs until the configured horizon — or until steady-state
    /// convergence, when [`Simulator::with_convergence`] armed it — and
    /// returns the statistics.
    pub fn run(mut self) -> SimStats {
        if self.event.is_some() {
            self.run_event();
            return self.finish();
        }
        for _ in 0..self.config.cycles {
            self.step();
            if self.converge_poll() {
                break;
            }
        }
        self.finish()
    }

    /// The event engine's run loop: jump the clock straight to the next
    /// due event (this is where idle regions cost nothing — one
    /// `fast_forward` of the sample counter instead of per-cycle ticks,
    /// with identical occupancy integrals), then process the due cycle.
    fn run_event(&mut self) {
        let horizon = self.config.cycles as u64;
        while self.cycle < horizon {
            // Clamp idle-time jumps to the next convergence window
            // boundary: the poll must fire at exactly the cycles the
            // synchronous engine polls at, or an early stop could land on
            // a different cycle and break the engine-equivalence
            // contract. Without convergence the clamp is `u64::MAX` and
            // the jump is unchanged.
            let boundary = self.converge.as_ref().map_or(u64::MAX, |cv| cv.next);
            let next = self
                .event
                .as_ref()
                .expect("run_event without event state")
                .queue
                .peek_cycle()
                .unwrap_or(horizon)
                .min(horizon)
                .min(boundary);
            if next > self.cycle {
                let span = next - self.cycle;
                if let Some(ws) = self.wormhole.as_mut() {
                    ws.reservations.fast_forward(span);
                } else {
                    self.event
                        .as_mut()
                        .expect("run_event without event state")
                        .active
                        .fast_forward(span);
                }
                self.cycle = next;
                if self.converge_poll() || self.cycle == horizon {
                    break;
                }
                // Jump landed on a window boundary with no due events:
                // loop around and keep jumping from here.
                continue;
            }
            self.step_event();
            if self.converge_poll() {
                break;
            }
        }
    }

    /// Closes outages still open at the end of the run and folds the
    /// per-link outage clocks into the availability statistics (no-op for
    /// static runs). Shared verbatim by both switching modes' finishers,
    /// so the floating-point fold order is identical.
    fn fold_availability(&mut self) {
        if !self.dynamic {
            return;
        }
        for idx in 0..self.down_since.len() {
            if self.down_since[idx] != u64::MAX {
                self.down_cycles[idx] += self.cycle - self.down_since[idx];
                self.down_since[idx] = u64::MAX;
            }
        }
        self.stats.links_failed = self.ever_down.iter().filter(|&&b| b).count() as u64;
        self.stats.link_downtime_cycles = self.down_cycles.iter().sum();
        if self.cycle > 0 {
            let mut min_avail = 1.0f64;
            let mut sum_avail = 0.0f64;
            for &down in &self.down_cycles {
                let avail = 1.0 - down as f64 / self.cycle as f64;
                min_avail = min_avail.min(avail);
                sum_avail += avail;
            }
            self.stats.availability_min = min_avail;
            self.stats.availability_mean = sum_avail / self.down_cycles.len() as f64;
        }
    }

    /// Finalizes statistics without running further cycles.
    pub fn finish(mut self) -> SimStats {
        // Fold the workload ledger first: every finisher below consumes
        // `self` whole, and the fold only touches `stats.workload`.
        if let Some(wl) = self.workload.take() {
            wl.source.collect(&mut self.stats.workload);
        }
        if self.wormhole.is_some() {
            // Wormhole statistics come from the reservation table, which
            // both engines share — one finisher serves both.
            return self.finish_wormhole();
        }
        if self.event.is_some() {
            return self.finish_event();
        }
        let mut in_flight: u64 = self.source_queues.iter().map(|q| q.len() as u64).sum();
        let mut high_water = 0usize;
        let mut occupancy_sum = 0.0f64;
        let queue_count = self.queues.queue_count();
        // Queue order = flat link order = the old (stage, switch, kind)
        // nesting, so the floating-point fold below matches it exactly.
        for q in 0..queue_count {
            in_flight += self.queues.len(q) as u64;
            high_water = high_water.max(self.queues.high_water(q));
            occupancy_sum += self.queues.mean_occupancy(q);
        }
        // Nonstraight balance per the paper's load-balancing argument.
        let size = self.config.size;
        let mut imbalance_sum = 0.0f64;
        let mut switches_with_traffic = 0usize;
        let mut max_link_load = 0u64;
        let mut stage_link_use = vec![0u64; size.stages()];
        for stage in size.stage_indices() {
            for sw in size.switches() {
                let plus = self.queues.carried(Link::plus(stage, sw).flat_index(size));
                let minus = self.queues.carried(Link::minus(stage, sw).flat_index(size));
                let straight = self
                    .queues
                    .carried(Link::straight(stage, sw).flat_index(size));
                max_link_load = max_link_load.max(plus).max(minus).max(straight);
                stage_link_use[stage] += plus + minus + straight;
                if plus + minus > 0 {
                    imbalance_sum += (plus.abs_diff(minus)) as f64 / (plus + minus) as f64;
                    switches_with_traffic += 1;
                }
            }
        }
        self.stats.stage_link_use = stage_link_use;
        self.stats.nonstraight_imbalance = if switches_with_traffic == 0 {
            0.0
        } else {
            imbalance_sum / switches_with_traffic as f64
        };
        self.stats.max_link_load = max_link_load;
        self.fold_availability();
        self.stats.in_flight = in_flight;
        self.stats.queue_high_water = high_water;
        self.stats.queue_mean_occupancy = if queue_count == 0 {
            0.0
        } else {
            occupancy_sum / queue_count as f64
        };
        self.stats.cycles = self.cycle;
        self.stats
    }

    /// Event-engine finisher: [`Simulator::finish`]'s folds verbatim over
    /// the dense arena. The arena's per-queue integrals are the same
    /// `u64`s the flat arena accumulates and the fold visits queues in
    /// the same flat order, so every floating-point result is
    /// bit-identical.
    fn finish_event(mut self) -> SimStats {
        let ev = self.event.take().expect("finish_event without event state");
        let arena = ev.active;
        let mut in_flight: u64 = self.source_queues.iter().map(|q| q.len() as u64).sum();
        let mut high_water = 0usize;
        let mut occupancy_sum = 0.0f64;
        let queue_count = arena.queue_count();
        // Fold over the ever-touched queues only, in ascending queue
        // order. A never-activated queue contributes `0` to the integer
        // folds and `+0.0` to the occupancy sum — an exact IEEE identity
        // on these non-negative partial sums — so the result is
        // byte-identical to the synchronous finisher's full walk while
        // the work stays proportional to the traffic (the run-long
        // analogue of the arena's dense working set).
        let mut touched = arena.touched_queues().to_vec();
        touched.sort_unstable();
        for &q in &touched {
            let q = q as usize;
            in_flight += arena.len(q) as u64;
            high_water = high_water.max(arena.high_water(q));
            occupancy_sum += arena.mean_occupancy(q);
        }
        let size = self.config.size;
        let n = size.n();
        let mut imbalance_sum = 0.0f64;
        let mut switches_with_traffic = 0usize;
        let mut max_link_load = 0u64;
        let mut stage_link_use = vec![0u64; size.stages()];
        // Same sparsity argument per (stage, switch): a switch none of
        // whose three queues was ever activated carried nothing on any
        // link. Queue triples share a switch, and `touched` is sorted,
        // so `q / 3` dedups to ascending switch order — the synchronous
        // loop's (stage, sw) visit order.
        let mut sw_ids: Vec<u32> = touched.iter().map(|&q| q / 3).collect();
        sw_ids.dedup();
        for &sw_id in &sw_ids {
            let stage = sw_id as usize / n;
            let sw = sw_id as usize % n;
            let plus = arena.carried(Link::plus(stage, sw).flat_index(size));
            let minus = arena.carried(Link::minus(stage, sw).flat_index(size));
            let straight = arena.carried(Link::straight(stage, sw).flat_index(size));
            max_link_load = max_link_load.max(plus).max(minus).max(straight);
            stage_link_use[stage] += plus + minus + straight;
            if plus + minus > 0 {
                imbalance_sum += (plus.abs_diff(minus)) as f64 / (plus + minus) as f64;
                switches_with_traffic += 1;
            }
        }
        self.stats.stage_link_use = stage_link_use;
        self.stats.nonstraight_imbalance = if switches_with_traffic == 0 {
            0.0
        } else {
            imbalance_sum / switches_with_traffic as f64
        };
        self.stats.max_link_load = max_link_load;
        self.fold_availability();
        self.stats.in_flight = in_flight;
        self.stats.queue_high_water = high_water;
        self.stats.queue_mean_occupancy = if queue_count == 0 {
            0.0
        } else {
            occupancy_sum / queue_count as f64
        };
        self.stats.cycles = self.cycle;
        self.stats
    }

    /// Wormhole-mode finisher: the queue-occupancy, link-use, and
    /// imbalance statistics come from the reservation table (held lanes
    /// and flits carried) in the same shapes and units the
    /// store-and-forward path reports for buffers and packets, plus the
    /// flit-level ledger.
    fn finish_wormhole(mut self) -> SimStats {
        let ws = self
            .wormhole
            .take()
            .expect("finish_wormhole without wormhole state");
        let queued: u64 = self.source_queues.iter().map(|q| q.len() as u64).sum();
        let mut in_flight = queued;
        let mut flits_in_flight = queued * u64::from(ws.flits);
        for &id in &ws.order {
            let w = &ws.worms[id as usize];
            debug_assert!(!w.dead, "dead worms are retired every cycle");
            in_flight += 1;
            flits_in_flight += u64::from(w.pending) + w.held.len() as u64;
        }
        let res = &ws.reservations;
        let mut high_water = 0usize;
        let mut occupancy_sum = 0.0f64;
        let link_count = res.link_count();
        for q in 0..link_count {
            high_water = high_water.max(res.high_water(q));
            occupancy_sum += res.mean_occupancy(q);
        }
        // Link-use counters in flits (a worm crossing a link carries
        // `flits` flits over it), folded in the same order as the
        // store-and-forward path.
        let size = self.config.size;
        let mut imbalance_sum = 0.0f64;
        let mut switches_with_traffic = 0usize;
        let mut max_link_load = 0u64;
        let mut stage_link_use = vec![0u64; size.stages()];
        for stage in size.stage_indices() {
            for sw in size.switches() {
                let plus = res.carried(Link::plus(stage, sw).flat_index(size));
                let minus = res.carried(Link::minus(stage, sw).flat_index(size));
                let straight = res.carried(Link::straight(stage, sw).flat_index(size));
                max_link_load = max_link_load.max(plus).max(minus).max(straight);
                stage_link_use[stage] += plus + minus + straight;
                if plus + minus > 0 {
                    imbalance_sum += (plus.abs_diff(minus)) as f64 / (plus + minus) as f64;
                    switches_with_traffic += 1;
                }
            }
        }
        self.stats.stage_link_use = stage_link_use;
        self.stats.nonstraight_imbalance = if switches_with_traffic == 0 {
            0.0
        } else {
            imbalance_sum / switches_with_traffic as f64
        };
        self.stats.max_link_load = max_link_load;
        self.fold_availability();
        self.stats.in_flight = in_flight;
        self.stats.flits_in_flight = flits_in_flight;
        self.stats.queue_high_water = high_water;
        self.stats.queue_mean_occupancy = if link_count == 0 {
            0.0
        } else {
            occupancy_sum / link_count as f64
        };
        self.stats.cycles = self.cycle;
        self.stats
    }

    /// The cycle counter (number of completed steps).
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Immutable view of the accumulated statistics (finalized fields such
    /// as `in_flight` are only filled in by [`Simulator::finish`]).
    pub fn stats(&self) -> &SimStats {
        &self.stats
    }
}

/// Slides worm `id` one link forward after its head moved (advance or
/// eject): a pending flit enters the rear lane if any remain at the
/// source, otherwise the tail releases the rear lane; every still-held
/// lane then carried exactly one flit this cycle. Free function (not a
/// `Simulator` method) because the worm state is detached from the
/// simulator for the duration of a wormhole step.
fn shift_rear(ws: &mut WormState, id: u32) {
    if ws.worms[id as usize].pending > 0 {
        ws.worms[id as usize].pending -= 1;
    } else {
        let slot = ws.worms[id as usize]
            .held
            .pop_front()
            .expect("a live worm holds at least one lane");
        ws.reservations.release(slot as usize);
    }
    let lanes = ws.reservations.lanes();
    for i in 0..ws.worms[id as usize].held.len() {
        let slot = ws.worms[id as usize].held[i];
        ws.reservations.carried_inc(slot as usize / lanes);
    }
}

/// Allocates a worm for `packet` (recycling a retired id when one is
/// free), with all `flits` flits pending; the caller reserves the first
/// lane and calls [`shift_rear`] to launch the head flit.
fn alloc_worm(ws: &mut WormState, packet: &Packet) -> u32 {
    let flits = ws.flits;
    if let Some(id) = ws.free.pop() {
        let w = &mut ws.worms[id as usize];
        w.dest = packet.dest;
        w.injected_at = packet.injected_at;
        w.tag_state = packet.tag_state();
        w.pending = flits;
        w.ejected = 0;
        w.head_stage = 0;
        w.head_to = 0;
        w.ejecting = false;
        w.dead = false;
        w.held.clear();
        return id;
    }
    let id = ws.worms.len();
    assert!(
        id < ReservationTable::FREE as usize,
        "worm id space exhausted"
    );
    ws.worms.push(Worm {
        dest: packet.dest,
        injected_at: packet.injected_at,
        tag_state: packet.tag_state(),
        pending: flits,
        ejected: 0,
        head_stage: 0,
        head_to: 0,
        ejecting: false,
        dead: false,
        held: VecDeque::new(),
    });
    id as u32
}

/// Convenience: run one configuration under a policy and pattern with no
/// faults.
pub fn run_once(config: SimConfig, policy: RoutingPolicy, pattern: TrafficPattern) -> SimStats {
    Simulator::new(config, policy, pattern).run()
}

#[cfg(test)]
mod tests {
    use super::*;
    use iadm_fault::scenario::{self, KindFilter};

    fn config(n: usize, load: f64, cycles: usize) -> SimConfig {
        SimConfig {
            size: Size::new(n).unwrap(),
            queue_capacity: 4,
            cycles,
            warmup: cycles / 4,
            offered_load: load,
            seed: 7,
            engine: EngineKind::Synchronous,
        }
    }

    #[test]
    fn packets_are_conserved_and_never_misrouted() {
        for policy in [
            RoutingPolicy::FixedC,
            RoutingPolicy::SsdtBalance,
            RoutingPolicy::RandomSign,
        ] {
            let stats = run_once(config(8, 0.4, 400), policy, TrafficPattern::Uniform);
            assert!(stats.is_conserved(), "{policy:?}: {stats:?}");
            assert_eq!(stats.misrouted, 0, "{policy:?}");
            assert_eq!(stats.dropped, 0, "no faults => no drops ({policy:?})");
            assert!(stats.delivered > 0, "{policy:?}");
        }
    }

    #[test]
    fn histogram_and_stage_counters_are_consistent() {
        let stats = run_once(
            config(8, 0.4, 400),
            RoutingPolicy::SsdtBalance,
            TrafficPattern::Uniform,
        );
        assert_eq!(stats.latency_histogram.count(), stats.latency_count);
        assert!(stats.percentile(0.5) <= stats.percentile(0.95));
        assert!(stats.percentile(0.95) <= stats.percentile(0.99));
        assert!(stats.percentile(0.99) <= stats.latency_max);
        assert!(stats.percentile(1.0) == stats.latency_max);
        assert_eq!(stats.stage_link_use.len(), 3);
        // Every delivered packet crossed a final-stage link.
        assert!(stats.stage_link_use[2] >= stats.delivered);
        // A delivered packet crossed all 3 stages; an in-flight one some
        // prefix of them.
        let total: u64 = stats.stage_link_use.iter().sum();
        assert!(total >= stats.delivered * 3, "{stats:?}");
        assert!(
            total <= (stats.delivered + stats.in_flight) * 3,
            "{stats:?}"
        );
    }

    #[test]
    fn zero_load_injects_nothing() {
        let stats = run_once(
            config(8, 0.0, 100),
            RoutingPolicy::FixedC,
            TrafficPattern::Uniform,
        );
        assert_eq!(stats.injected, 0);
        assert_eq!(stats.delivered, 0);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = run_once(
            config(16, 0.3, 200),
            RoutingPolicy::SsdtBalance,
            TrafficPattern::Uniform,
        );
        let b = run_once(
            config(16, 0.3, 200),
            RoutingPolicy::SsdtBalance,
            TrafficPattern::Uniform,
        );
        assert_eq!(a.delivered, b.delivered);
        assert_eq!(a.latency_sum, b.latency_sum);
    }

    #[test]
    #[should_panic(expected = "warmup")]
    fn warmup_beyond_cycles_is_rejected() {
        let mut cfg = config(8, 0.4, 100);
        cfg.warmup = 101;
        let _ = Simulator::new(cfg, RoutingPolicy::FixedC, TrafficPattern::Uniform);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn non_finite_offered_load_is_rejected() {
        let mut cfg = config(8, 0.4, 100);
        cfg.offered_load = f64::NAN;
        let _ = Simulator::new(cfg, RoutingPolicy::FixedC, TrafficPattern::Uniform);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn infinite_offered_load_is_rejected() {
        let mut cfg = config(8, 0.4, 100);
        cfg.offered_load = f64::INFINITY;
        let _ = Simulator::new(cfg, RoutingPolicy::FixedC, TrafficPattern::Uniform);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_offered_load_is_rejected() {
        let mut cfg = config(8, 0.4, 100);
        cfg.offered_load = 1.5;
        let _ = Simulator::new(cfg, RoutingPolicy::FixedC, TrafficPattern::Uniform);
    }

    #[test]
    fn cycles_beyond_u32_are_rejected_with_a_clear_message() {
        let mut cfg = config(8, 0.4, 100);
        cfg.cycles = u32::MAX as usize + 1;
        cfg.warmup = 0;
        let err = cfg.validate().unwrap_err();
        assert!(
            err.contains("32 bits") && err.contains("4294967296"),
            "unhelpful message: {err}"
        );
        // The largest representable run is still accepted.
        cfg.cycles = u32::MAX as usize;
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn validate_agrees_with_the_constructor_panics() {
        assert!(config(8, 0.4, 100).validate().is_ok());
        let mut bad = config(8, 0.4, 100);
        bad.offered_load = f64::NAN;
        assert!(bad.validate().unwrap_err().contains("finite"));
        bad.offered_load = 1.5;
        assert!(bad.validate().unwrap_err().contains("out of range"));
        bad = config(8, 0.4, 100);
        bad.warmup = 101;
        assert!(bad.validate().unwrap_err().contains("warmup"));
    }

    #[test]
    fn warmup_boundary_counts_packets_injected_exactly_at_warmup() {
        // Identity permutation at load 1.0: every cycle each source
        // injects one packet that rides straight links only, so each
        // injection cohort of n packets is delivered together and in
        // order. The latency population therefore shrinks by exactly one
        // cohort per unit of warmup — until the warmup passes the last
        // cohort that was still delivered by the end of the run.
        let perm: Vec<usize> = (0..8).collect();
        let mk = |warmup: usize| {
            let cfg = SimConfig {
                warmup,
                offered_load: 1.0,
                ..config(8, 1.0, 100)
            };
            run_once(
                cfg,
                RoutingPolicy::FixedC,
                TrafficPattern::Permutation(perm.clone()),
            )
            .latency_count
        };
        let all = mk(0);
        assert!(all > 0 && all % 8 == 0, "whole cohorts only, got {all}");
        let last = (all / 8 - 1) as usize; // last fully-delivered cohort
        assert_eq!(
            mk(last),
            8,
            "a packet injected exactly at the warm-up cycle is counted"
        );
        assert_eq!(mk(last + 1), 0, "later cohorts never finish by the end");
    }

    #[test]
    fn warmup_equal_to_cycles_is_allowed() {
        let mut cfg = config(8, 0.3, 100);
        cfg.warmup = 100;
        let stats = run_once(cfg, RoutingPolicy::FixedC, TrafficPattern::Uniform);
        // Everything delivered was injected pre-warm-up: no latency samples.
        assert_eq!(stats.latency_count, 0);
        assert!(stats.is_conserved());
    }

    #[test]
    fn permutation_traffic_delivers_everything_eventually() {
        let perm: Vec<usize> = (0..8).rev().collect();
        let mut config = config(8, 0.2, 2000);
        config.warmup = 0;
        let stats = run_once(
            config,
            RoutingPolicy::SsdtBalance,
            TrafficPattern::Permutation(perm),
        );
        assert_eq!(stats.misrouted, 0);
        assert!(stats.is_conserved());
        // Low load must drain almost fully.
        assert!(
            stats.delivered as f64 >= 0.9 * stats.injected as f64,
            "delivered {} of {}",
            stats.delivered,
            stats.injected
        );
    }

    #[test]
    fn latency_at_low_load_is_near_pipeline_depth() {
        // At very low load a packet should cross the n-stage pipeline plus
        // the injection hop with little queueing: mean latency < 2 * (n+1).
        let stats = run_once(
            config(16, 0.02, 2000),
            RoutingPolicy::FixedC,
            TrafficPattern::Uniform,
        );
        let n = 4.0;
        assert!(stats.mean_latency() >= n, "cannot beat the pipeline depth");
        assert!(
            stats.mean_latency() < 2.0 * (n + 1.0),
            "mean latency {} too high for load 0.02",
            stats.mean_latency()
        );
    }

    #[test]
    fn ssdt_balance_survives_nonstraight_faults_fixedc_drops() {
        // Fault one nonstraight ICube link: FixedC drops packets that need
        // it; SsdtBalance uses the spare and drops nothing. One shared map
        // serves both runs (no per-run clone).
        let size = Size::new(8).unwrap();
        let blockages = Arc::new(iadm_fault::BlockageMap::from_links(
            size,
            [iadm_topology::Link::plus(1, 1)],
        ));
        let mk = |policy| {
            Simulator::with_blockages(
                config(8, 0.3, 600),
                policy,
                TrafficPattern::Uniform,
                Arc::clone(&blockages),
            )
            .run()
        };
        let fixed = mk(RoutingPolicy::FixedC);
        let ssdt = mk(RoutingPolicy::SsdtBalance);
        assert!(fixed.dropped > 0, "FixedC must lose packets: {fixed:?}");
        assert_eq!(ssdt.dropped, 0, "SSDT must evade the fault: {ssdt:?}");
        assert_eq!(ssdt.misrouted, 0);
    }

    #[test]
    fn hotspot_saturates_but_conserves() {
        let stats = run_once(
            config(8, 0.8, 300),
            RoutingPolicy::SsdtBalance,
            TrafficPattern::HotSpot(0),
        );
        assert!(stats.is_conserved());
        assert_eq!(stats.misrouted, 0);
        // The hot output can sink at most 1 packet/cycle.
        assert!(stats.delivered <= stats.cycles + 1);
    }

    #[test]
    fn all_links_faulty_drops_everything_it_admits() {
        let size = Size::new(8).unwrap();
        let mut rng = iadm_rng::StdRng::seed_from_u64(3);
        let blockages = scenario::bernoulli_faults(&mut rng, size, 1.0, KindFilter::Any);
        let stats = Simulator::with_blockages(
            config(8, 0.5, 100),
            RoutingPolicy::SsdtBalance,
            TrafficPattern::Uniform,
            blockages,
        )
        .run();
        assert_eq!(stats.delivered, 0);
        assert!(stats.is_conserved());
    }
}

#[cfg(test)]
mod tsdt_sender_tests {
    use super::*;

    fn config(n: usize, load: f64, cycles: usize) -> SimConfig {
        SimConfig {
            size: Size::new(n).unwrap(),
            queue_capacity: 4,
            cycles,
            warmup: cycles / 4,
            offered_load: load,
            seed: 21,
            engine: EngineKind::Synchronous,
        }
    }

    #[test]
    fn tsdt_sender_survives_mixed_faults() {
        // Faults of every kind, placed so that the network stays fully
        // connected; SSDT drops (straight faults defeat it) while the
        // TSDT sender policy delivers everything. One shared map serves
        // both runs.
        let size = Size::new(8).unwrap();
        let blockages = Arc::new(iadm_fault::BlockageMap::from_links(
            size,
            [
                iadm_topology::Link::straight(1, 1),
                iadm_topology::Link::plus(0, 2),
                iadm_topology::Link::minus(2, 6),
            ],
        ));
        let mk = |policy| {
            Simulator::with_blockages(
                config(8, 0.3, 1200),
                policy,
                TrafficPattern::Uniform,
                Arc::clone(&blockages),
            )
            .run()
        };
        let ssdt = mk(RoutingPolicy::SsdtBalance);
        let tsdt = mk(RoutingPolicy::TsdtSender);
        assert!(ssdt.dropped > 0, "SSDT must lose straight-fault traffic");
        // The TSDT sender never drops in-network; its only losses are
        // source refusals of provably disconnected pairs (here: traffic
        // from source 1 to destinations 1 and 5, severed by the straight
        // fault on its forced prefix).
        assert_eq!(
            tsdt.dropped, 0,
            "TSDT sender never drops in-network: {tsdt:?}"
        );
        assert!(
            tsdt.refused > 0,
            "disconnected pairs are refused at the source"
        );
        assert_eq!(tsdt.misrouted, 0);
        assert!(tsdt.is_conserved());
        let served = |s: &SimStats| s.delivered + s.in_flight;
        assert!(served(&tsdt) + tsdt.refused >= served(&ssdt) + ssdt.dropped);
    }

    #[test]
    fn tsdt_sender_refuses_unroutable_pairs_at_source() {
        // Disconnect destination 3 completely (block all its input links
        // at the last stage); TSDT-sender traffic to 3 is refused at the
        // source, everything else still flows.
        let size = Size::new(8).unwrap();
        let mut blockages = iadm_fault::BlockageMap::new(size);
        blockages.block_switch(size.stages(), 3);
        let stats = Simulator::with_blockages(
            config(8, 0.4, 1500),
            RoutingPolicy::TsdtSender,
            TrafficPattern::Uniform,
            blockages,
        )
        .run();
        assert!(stats.refused > 0, "traffic to 3 must be refused");
        assert_eq!(stats.dropped, 0);
        assert_eq!(stats.misrouted, 0);
        assert!(stats.is_conserved());
        // Roughly 1/8 of uniform traffic targets the dead output.
        let ratio = stats.refused as f64 / stats.injected as f64;
        assert!(ratio > 0.05 && ratio < 0.25, "refusal ratio {ratio}");
    }

    #[test]
    fn tsdt_sender_without_faults_behaves_like_fixed_c() {
        // No faults: REROUTE returns the all-C tag, so TsdtSender and
        // FixedC deliver identical flows.
        let a = Simulator::new(
            config(16, 0.3, 800),
            RoutingPolicy::TsdtSender,
            TrafficPattern::Uniform,
        )
        .run();
        let b = Simulator::new(
            config(16, 0.3, 800),
            RoutingPolicy::FixedC,
            TrafficPattern::Uniform,
        )
        .run();
        assert_eq!(a.delivered, b.delivered);
        assert_eq!(a.latency_sum, b.latency_sum);
        assert_eq!(a.dropped, 0);
    }

    #[test]
    fn tag_cache_replays_reroute_outcomes() {
        // Permutation traffic fixes dest per source, so after the first
        // injection every sender_tag call is a cache hit; the outcome must
        // still match a fresh REROUTE for both routable and refused pairs.
        let size = Size::new(8).unwrap();
        let mut blockages = iadm_fault::BlockageMap::new(size);
        blockages.block_switch(size.stages(), 3);
        let perm: Vec<usize> = (0..8).rev().collect(); // source 5 -> dead output 3
        let stats = Simulator::with_blockages(
            SimConfig {
                warmup: 0,
                ..config(8, 0.5, 800)
            },
            RoutingPolicy::TsdtSender,
            TrafficPattern::Permutation(perm),
            blockages,
        )
        .run();
        assert!(stats.refused > 0, "source 5's pair is disconnected");
        assert_eq!(stats.dropped, 0);
        assert_eq!(stats.misrouted, 0);
        assert!(stats.is_conserved());
        assert!(stats.delivered > 0, "the other seven pairs still flow");
    }
}

#[cfg(test)]
mod crossbar_tests {
    use super::*;

    fn config(load: f64) -> SimConfig {
        SimConfig {
            size: Size::new(16).unwrap(),
            queue_capacity: 4,
            cycles: 2000,
            warmup: 300,
            offered_load: load,
            seed: 5,
            engine: EngineKind::Synchronous,
        }
    }

    #[test]
    fn crossbar_switches_conserve_and_deliver() {
        let stats = Simulator::new(
            config(0.6),
            RoutingPolicy::SsdtBalance,
            TrafficPattern::Uniform,
        )
        .with_crossbar_switches()
        .run();
        assert!(stats.is_conserved());
        assert_eq!(stats.misrouted, 0);
        assert!(stats.delivered > 0);
    }

    #[test]
    fn gamma_crossbars_outperform_iadm_switches_under_contention() {
        // Under heavy hot-ish traffic the 3x3 crossbars resolve switch
        // contention that single-input switches cannot: lower latency.
        let mk = |crossbar: bool| {
            let sim = Simulator::new(
                config(0.85),
                RoutingPolicy::SsdtBalance,
                TrafficPattern::BitReversal,
            );
            let sim = if crossbar {
                sim.with_crossbar_switches()
            } else {
                sim
            };
            sim.run()
        };
        let iadm = mk(false);
        let gamma = mk(true);
        assert!(iadm.is_conserved() && gamma.is_conserved());
        assert!(
            gamma.mean_latency() < iadm.mean_latency(),
            "crossbars must cut latency: {} vs {}",
            gamma.mean_latency(),
            iadm.mean_latency()
        );
        assert!(gamma.delivered >= iadm.delivered);
    }
}

#[cfg(test)]
mod balance_tests {
    use super::*;

    fn config(load: f64) -> SimConfig {
        SimConfig {
            size: Size::new(16).unwrap(),
            queue_capacity: 4,
            cycles: 2000,
            warmup: 200,
            offered_load: load,
            seed: 9,
            engine: EngineKind::Synchronous,
        }
    }

    #[test]
    fn fixed_c_is_maximally_imbalanced() {
        // FixedC routes every nonstraight-bound message of a switch down
        // the same sign: imbalance exactly 1.
        let stats = run_once(config(0.5), RoutingPolicy::FixedC, TrafficPattern::Uniform);
        assert!(
            (stats.nonstraight_imbalance - 1.0).abs() < 1e-12,
            "imbalance {}",
            stats.nonstraight_imbalance
        );
    }

    #[test]
    fn ssdt_balance_spreads_the_load() {
        // The paper's claim, measured: shorter-queue assignment evens the
        // nonstraight load out.
        let fixed = run_once(config(0.5), RoutingPolicy::FixedC, TrafficPattern::Uniform);
        let ssdt = run_once(
            config(0.5),
            RoutingPolicy::SsdtBalance,
            TrafficPattern::Uniform,
        );
        assert!(
            ssdt.nonstraight_imbalance < 0.5 * fixed.nonstraight_imbalance,
            "SSDT imbalance {} vs FixedC {}",
            ssdt.nonstraight_imbalance,
            fixed.nonstraight_imbalance
        );
    }

    #[test]
    fn max_link_load_drops_under_balancing() {
        let fixed = run_once(config(0.7), RoutingPolicy::FixedC, TrafficPattern::Uniform);
        let ssdt = run_once(
            config(0.7),
            RoutingPolicy::SsdtBalance,
            TrafficPattern::Uniform,
        );
        assert!(
            ssdt.max_link_load <= fixed.max_link_load,
            "balancing must not increase the hottest link: {} vs {}",
            ssdt.max_link_load,
            fixed.max_link_load
        );
    }

    #[test]
    fn zero_traffic_reports_zero_imbalance() {
        let stats = run_once(
            config(0.0),
            RoutingPolicy::SsdtBalance,
            TrafficPattern::Uniform,
        );
        assert_eq!(stats.nonstraight_imbalance, 0.0);
        assert_eq!(stats.max_link_load, 0);
    }
}

#[cfg(test)]
mod wormhole_tests {
    use super::*;

    fn config(n: usize, load: f64, cycles: usize) -> SimConfig {
        SimConfig {
            size: Size::new(n).unwrap(),
            queue_capacity: 4,
            cycles,
            warmup: cycles / 4,
            offered_load: load,
            seed: 7,
            engine: EngineKind::Synchronous,
        }
    }

    #[test]
    fn low_load_latency_is_stages_plus_flits_plus_one() {
        // An unobstructed worm: admission cycle puts the head on a
        // stage-0 lane, `stages - 1` advances reach the last stage, the
        // output is claimed the next cycle, and F flits drain at one per
        // cycle — tail ejection at injection + stages + F, latency
        // stages + F + 1. At near-zero load the minimum is realized.
        for flits in [1u32, 4] {
            let stats = Simulator::new(
                config(16, 0.01, 4000),
                RoutingPolicy::FixedC,
                TrafficPattern::Uniform,
            )
            .with_wormhole_switching(flits, 1)
            .run();
            let floor = 4 + u64::from(flits) + 1; // stages(16) = 4
            assert!(stats.latency_count > 0);
            assert!(
                stats.latency_sum >= floor * stats.latency_count,
                "latency cannot beat the pipeline floor {floor}: {stats:?}"
            );
            assert!(
                stats.mean_latency() < 2.0 * floor as f64,
                "near-idle worms should move almost freely: {stats:?}"
            );
        }
    }

    #[test]
    fn single_flit_wormhole_matches_packet_accounting() {
        // F = 1: every worm is one flit, so the flit ledger must equal
        // the packet ledger column for column.
        let stats = Simulator::new(
            config(8, 0.4, 600),
            RoutingPolicy::SsdtBalance,
            TrafficPattern::Uniform,
        )
        .with_wormhole_switching(1, 1)
        .run();
        assert!(stats.is_conserved() && stats.flits_conserved(), "{stats:?}");
        assert_eq!(stats.flits_injected, stats.injected);
        assert_eq!(stats.flits_delivered, stats.delivered);
        assert_eq!(stats.flits_dropped, stats.dropped);
        assert_eq!(stats.flits_in_flight, stats.in_flight);
        assert_eq!(stats.misrouted, 0);
        assert!(stats.delivered > 0);
    }

    #[test]
    fn wormhole_uses_the_same_traffic_trace_as_store_and_forward() {
        // Arrivals draw the RNG in store-and-forward order, so the
        // injected count (and refusal-free totals) match exactly.
        let cfg = config(16, 0.5, 400);
        let sf = run_once(cfg, RoutingPolicy::FixedC, TrafficPattern::Uniform);
        let wh = Simulator::new(cfg, RoutingPolicy::FixedC, TrafficPattern::Uniform)
            .with_wormhole_switching(4, 1)
            .run();
        assert_eq!(sf.injected, wh.injected);
        assert_eq!(wh.flits_injected, wh.injected * 4);
        assert!(wh.flits_conserved(), "{wh:?}");
    }

    #[test]
    fn hotspot_output_drains_one_flit_per_cycle() {
        // All traffic to one output: the port ejects at most one flit
        // per cycle, so delivered packets are bounded by cycles / F.
        let stats = Simulator::new(
            config(8, 0.8, 400),
            RoutingPolicy::SsdtBalance,
            TrafficPattern::HotSpot(0),
        )
        .with_wormhole_switching(4, 1)
        .run();
        assert!(stats.is_conserved() && stats.flits_conserved(), "{stats:?}");
        assert_eq!(stats.misrouted, 0);
        assert!(stats.delivered <= stats.cycles / 4 + 1, "{stats:?}");
    }

    #[test]
    fn multi_lane_links_admit_more_worms_than_single_lane() {
        // Two lanes per link at high load: strictly more capacity in the
        // network, so delivery cannot get worse and congestion (stalled
        // admissions leaving packets at sources) relaxes.
        let mk = |lanes| {
            Simulator::new(
                config(16, 0.9, 600),
                RoutingPolicy::SsdtBalance,
                TrafficPattern::Uniform,
            )
            .with_wormhole_switching(4, lanes)
            .run()
        };
        let one = mk(1);
        let two = mk(2);
        assert!(one.flits_conserved() && two.flits_conserved());
        assert!(
            two.delivered >= one.delivered,
            "extra lanes must not hurt: {} vs {}",
            two.delivered,
            one.delivered
        );
    }

    #[test]
    #[should_panic(expected = "at least one flit")]
    fn zero_flits_is_rejected() {
        let _ = Simulator::new(
            config(8, 0.4, 100),
            RoutingPolicy::FixedC,
            TrafficPattern::Uniform,
        )
        .with_wormhole_switching(0, 1);
    }

    #[test]
    #[should_panic(expected = "at least one lane")]
    fn zero_lanes_is_rejected() {
        let _ = Simulator::new(
            config(8, 0.4, 100),
            RoutingPolicy::FixedC,
            TrafficPattern::Uniform,
        )
        .with_wormhole_switching(4, 0);
    }

    #[test]
    fn switching_mode_plumbing_is_equivalent_to_the_builder() {
        let cfg = config(8, 0.4, 300);
        let a = Simulator::new(cfg, RoutingPolicy::SsdtBalance, TrafficPattern::Uniform)
            .with_switching_mode(SwitchingMode::Wormhole { flits: 2, lanes: 1 })
            .run();
        let b = Simulator::new(cfg, RoutingPolicy::SsdtBalance, TrafficPattern::Uniform)
            .with_wormhole_switching(2, 1)
            .run();
        assert_eq!(a.delivered, b.delivered);
        assert_eq!(a.latency_sum, b.latency_sum);
        assert_eq!(a.flits_delivered, b.flits_delivered);
        // StoreForward is the identity.
        let c = Simulator::new(cfg, RoutingPolicy::SsdtBalance, TrafficPattern::Uniform)
            .with_switching_mode(SwitchingMode::StoreForward)
            .run();
        let d = run_once(cfg, RoutingPolicy::SsdtBalance, TrafficPattern::Uniform);
        assert_eq!(c.delivered, d.delivered);
        assert_eq!(c.flits_per_packet, 0);
    }
}

#[cfg(test)]
mod permutation_throughput_tests {
    use super::*;

    fn run_perm(perm: Vec<usize>, policy: RoutingPolicy) -> SimStats {
        let size = Size::new(8).unwrap();
        let config = SimConfig {
            size,
            queue_capacity: 4,
            cycles: 2000,
            warmup: 200,
            offered_load: 1.0,
            seed: 13,
            engine: EngineKind::Synchronous,
        };
        run_once(config, policy, TrafficPattern::Permutation(perm))
    }

    #[test]
    fn admissible_permutation_streams_at_full_rate() {
        // XOR permutations route over switch-disjoint paths (cube
        // admissible), so at offered load 1.0 the pipeline sustains ~1
        // packet/port/cycle with no queueing growth.
        let perm: Vec<usize> = (0..8).map(|s| s ^ 0b101).collect();
        let stats = run_perm(perm, RoutingPolicy::FixedC);
        assert_eq!(stats.misrouted, 0);
        assert!(stats.is_conserved());
        assert!(
            stats.throughput() > 0.95,
            "admissible permutation must stream: {}",
            stats.throughput()
        );
        // Latency stays at the pipeline depth (n + injection hop).
        assert!(stats.mean_latency() < 8.0, "{}", stats.mean_latency());
    }

    #[test]
    fn conflicting_permutation_throttles() {
        // Bit reversal at N=8 is not one-pass admissible: switch conflicts
        // serialize some flows and the sustained rate drops below 1.
        let perm: Vec<usize> = (0..8usize)
            .map(|s| ((s & 1) << 2) | (s & 2) | ((s >> 2) & 1))
            .collect();
        let stats = run_perm(perm, RoutingPolicy::FixedC);
        assert_eq!(stats.misrouted, 0);
        assert!(stats.is_conserved());
        assert!(
            stats.throughput() < 0.95,
            "conflicting permutation cannot stream at full rate: {}",
            stats.throughput()
        );
        // The SSDT balancing policy exploits the spare links to do better.
        let perm: Vec<usize> = (0..8usize)
            .map(|s| ((s & 1) << 2) | (s & 2) | ((s >> 2) & 1))
            .collect();
        let balanced = run_perm(perm, RoutingPolicy::SsdtBalance);
        assert!(
            balanced.throughput() >= stats.throughput() - 1e-9,
            "balancing must not hurt: {} vs {}",
            balanced.throughput(),
            stats.throughput()
        );
    }

    #[test]
    fn crossbars_lift_conflicting_permutation_throughput() {
        let perm: Vec<usize> = (0..8usize)
            .map(|s| ((s & 1) << 2) | (s & 2) | ((s >> 2) & 1))
            .collect();
        let size = Size::new(8).unwrap();
        let config = SimConfig {
            size,
            queue_capacity: 4,
            cycles: 2000,
            warmup: 200,
            offered_load: 1.0,
            seed: 13,
            engine: EngineKind::Synchronous,
        };
        let single = Simulator::new(
            config,
            RoutingPolicy::SsdtBalance,
            TrafficPattern::Permutation(perm.clone()),
        )
        .run();
        let crossbar = Simulator::new(
            config,
            RoutingPolicy::SsdtBalance,
            TrafficPattern::Permutation(perm),
        )
        .with_crossbar_switches()
        .run();
        assert!(
            crossbar.throughput() >= single.throughput(),
            "gamma crossbars must not reduce throughput: {} vs {}",
            crossbar.throughput(),
            single.throughput()
        );
    }
}

#[cfg(test)]
mod dchoice_convergence_tests {
    use super::*;
    use iadm_fault::scenario::{self, KindFilter};

    fn config(n: usize, load: f64, cycles: usize) -> SimConfig {
        SimConfig {
            size: Size::new(n).unwrap(),
            queue_capacity: 4,
            cycles,
            warmup: cycles / 4,
            offered_load: load,
            seed: 7,
            engine: EngineKind::Synchronous,
        }
    }

    #[test]
    fn dchoice_conserves_and_delivers_in_every_flavor() {
        for (d, sticky) in [(1u8, false), (2, false), (2, true)] {
            let stats = run_once(
                config(8, 0.5, 400),
                RoutingPolicy::DChoice { d, sticky },
                TrafficPattern::Uniform,
            );
            assert!(stats.is_conserved(), "d={d} sticky={sticky}: {stats:?}");
            assert_eq!(stats.misrouted, 0, "d={d} sticky={sticky}");
            assert_eq!(stats.dropped, 0, "no faults => no drops");
            assert!(stats.delivered > 0, "d={d} sticky={sticky}");
        }
    }

    #[test]
    fn dchoice_one_matches_fixed_c_without_faults() {
        // d = 1 samples only the preferred ΔC candidate, which fault-free
        // is exactly the FixedC behavior: identical statistics, not just
        // similar ones (both policies are deterministic).
        let fixed = run_once(
            config(16, 0.45, 400),
            RoutingPolicy::FixedC,
            TrafficPattern::Uniform,
        );
        let one = run_once(
            config(16, 0.45, 400),
            RoutingPolicy::DChoice {
                d: 1,
                sticky: false,
            },
            TrafficPattern::Uniform,
        );
        assert_eq!(fixed.delivered, one.delivered);
        assert_eq!(fixed.latency_sum, one.latency_sum);
        assert_eq!(fixed.nonstraight_imbalance, one.nonstraight_imbalance);
    }

    #[test]
    fn dchoice_one_survives_faults_fixed_c_drops_on() {
        // Under nonstraight faults, d = 1 still evades onto the spare
        // sign (the (false, true) reroute arm) where FixedC drops.
        let size = Size::new(16).unwrap();
        let mut rng = StdRng::seed_from_u64(0xFA);
        let map = scenario::random_faults(&mut rng, size, 6, KindFilter::NonstraightOnly);
        let cfg = config(16, 0.45, 400);
        let fixed = Simulator::with_blockages(
            cfg,
            RoutingPolicy::FixedC,
            TrafficPattern::Uniform,
            map.clone(),
        )
        .run();
        let one = Simulator::with_blockages(
            cfg,
            RoutingPolicy::DChoice {
                d: 1,
                sticky: false,
            },
            TrafficPattern::Uniform,
            map,
        )
        .run();
        assert!(one.is_conserved() && fixed.is_conserved());
        assert!(one.reroutes > 0, "the spare sign was never used");
        assert!(
            one.dropped < fixed.dropped,
            "fault evasion must save packets: {} vs {}",
            one.dropped,
            fixed.dropped
        );
    }

    #[test]
    fn dchoice_balances_where_fixed_c_cannot() {
        // The balanced-allocation claim, measurably: at saturating load
        // the two-choice policy spreads nonstraight traffic across both
        // signs while FixedC puts every packet on ΔC by construction.
        let two = run_once(
            config(16, 0.9, 600),
            RoutingPolicy::DChoice {
                d: 2,
                sticky: false,
            },
            TrafficPattern::Uniform,
        );
        let fixed = run_once(
            config(16, 0.9, 600),
            RoutingPolicy::FixedC,
            TrafficPattern::Uniform,
        );
        assert_eq!(fixed.nonstraight_imbalance, 1.0);
        // Ties keep ΔC deterministically, so d-choice retains a mild ΔC
        // skew (unlike SSDT's alternating flip) — but occupancy
        // comparison still pulls it far off the all-one-sign extreme.
        assert!(
            two.nonstraight_imbalance < 0.75,
            "two choices left imbalance at {}",
            two.nonstraight_imbalance
        );
    }

    #[test]
    fn sticky_dchoice_diverges_from_plain_dchoice() {
        // Sticky retention must actually change routing under load (a
        // sticky flag that never changes a decision is dead code).
        let plain = run_once(
            config(16, 0.8, 600),
            RoutingPolicy::DChoice {
                d: 2,
                sticky: false,
            },
            TrafficPattern::Uniform,
        );
        let sticky = run_once(
            config(16, 0.8, 600),
            RoutingPolicy::DChoice { d: 2, sticky: true },
            TrafficPattern::Uniform,
        );
        assert!(plain.is_conserved() && sticky.is_conserved());
        assert_ne!(
            (plain.latency_sum, plain.delivered),
            (sticky.latency_sum, sticky.delivered),
            "sticky retention never altered a route"
        );
    }

    #[test]
    fn dchoice_runs_under_wormhole_switching() {
        let stats = Simulator::new(
            config(8, 0.3, 400),
            RoutingPolicy::DChoice { d: 2, sticky: true },
            TrafficPattern::Uniform,
        )
        .with_wormhole_switching(4, 1)
        .run();
        assert!(stats.flits_conserved(), "{stats:?}");
        assert!(stats.delivered > 0);
        assert_eq!(stats.misrouted, 0);
    }

    #[test]
    fn convergence_stops_early_and_stamps_the_boundary() {
        let cfg = config(16, 0.3, 20_000);
        let stats = Simulator::new(cfg, RoutingPolicy::SsdtBalance, TrafficPattern::Uniform)
            .with_convergence(200, 0.05)
            .run();
        assert!(
            stats.converged_at_cycle > 0,
            "a 20k-cycle uniform run must reach steady state: {stats:?}"
        );
        assert_eq!(stats.cycles, stats.converged_at_cycle);
        assert!(stats.cycles < 20_000, "never stopped early");
        assert_eq!(stats.converged_at_cycle % 200, 0, "not a window boundary");
        assert!(stats.is_conserved());
    }

    #[test]
    fn convergence_off_leaves_the_sentinel_zero() {
        let stats = run_once(
            config(8, 0.4, 400),
            RoutingPolicy::SsdtBalance,
            TrafficPattern::Uniform,
        );
        assert_eq!(stats.converged_at_cycle, 0);
        assert_eq!(stats.cycles, 400);
    }

    #[test]
    fn zero_load_windows_never_converge() {
        // Empty windows carry no evidence: a run with no latency samples
        // must execute its full horizon, not "converge" on 0 == 0.
        let stats = Simulator::new(
            config(8, 0.0, 1000),
            RoutingPolicy::SsdtBalance,
            TrafficPattern::Uniform,
        )
        .with_convergence(50, 0.1)
        .run();
        assert_eq!(stats.converged_at_cycle, 0);
        assert_eq!(stats.cycles, 1000);
    }

    #[test]
    fn converged_runs_match_across_engines_byte_for_byte() {
        // The clamped-jump contract: an early-stopped event-engine run
        // must stop at the same boundary with the same statistics as the
        // synchronous engine.
        for load in [0.2, 0.6] {
            let mut cfg = config(16, load, 20_000);
            let sync = Simulator::new(cfg, RoutingPolicy::SsdtBalance, TrafficPattern::Uniform)
                .with_convergence(200, 0.05)
                .run();
            cfg.engine = EngineKind::EventDriven;
            let event = Simulator::new(cfg, RoutingPolicy::SsdtBalance, TrafficPattern::Uniform)
                .with_convergence(200, 0.05)
                .run();
            assert_eq!(sync.converged_at_cycle, event.converged_at_cycle);
            assert_eq!(sync.cycles, event.cycles);
            assert_eq!(sync.delivered, event.delivered);
            assert_eq!(sync.latency_sum, event.latency_sum);
            assert_eq!(sync.in_flight, event.in_flight);
            assert_eq!(
                sync.queue_mean_occupancy.to_bits(),
                event.queue_mean_occupancy.to_bits(),
                "occupancy integrals diverged at load {load}"
            );
        }
    }

    #[test]
    fn dchoice_matches_across_engines_with_convergence() {
        let mut cfg = config(16, 0.5, 10_000);
        let policy = RoutingPolicy::DChoice { d: 2, sticky: true };
        let sync = Simulator::new(cfg, policy, TrafficPattern::Uniform)
            .with_convergence(100, 0.1)
            .run();
        cfg.engine = EngineKind::EventDriven;
        let event = Simulator::new(cfg, policy, TrafficPattern::Uniform)
            .with_convergence(100, 0.1)
            .run();
        assert_eq!(sync.converged_at_cycle, event.converged_at_cycle);
        assert_eq!(sync.delivered, event.delivered);
        assert_eq!(sync.latency_sum, event.latency_sum);
    }

    #[test]
    #[should_panic(expected = "window must be positive")]
    fn zero_convergence_window_is_rejected() {
        let _ = Simulator::new(
            config(8, 0.4, 100),
            RoutingPolicy::SsdtBalance,
            TrafficPattern::Uniform,
        )
        .with_convergence(0, 0.1);
    }

    #[test]
    #[should_panic(expected = "tolerance")]
    fn negative_convergence_tolerance_is_rejected() {
        let _ = Simulator::new(
            config(8, 0.4, 100),
            RoutingPolicy::SsdtBalance,
            TrafficPattern::Uniform,
        )
        .with_convergence(10, -0.5);
    }
}
