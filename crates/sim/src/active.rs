//! A dense arena of the *currently non-empty* link queues, for the
//! event-driven engine.
//!
//! [`crate::QueueArena`] lays every queue of the network out flat —
//! `3 N n` ring buffers — which is ideal for the synchronous engine (the
//! whole arena is touched every few cycles at moderate load) but is
//! exactly wrong at low load on a large network: the handful of in-flight
//! packets scatter their queue touches over tens of megabytes, and every
//! hop becomes a chain of cache misses. `ActiveArena` keeps only the
//! non-empty queues in a dense slab: a flat-index→dense-slot map
//! activates a queue on its first push and releases the slot the moment
//! it drains, so the working set is proportional to the packets in
//! flight, not to the network.
//!
//! The accounting contract is exact equality with [`crate::QueueArena`]:
//! per-queue occupancy integrals, high-water marks, and carried counts
//! are the same `u64`s the flat arena would have produced (episode sums
//! folded into persistent per-queue totals on every drain; an idle span
//! between episodes contributes length `0`, which is exactly what the
//! flat arena's lazy flush would have credited), so the downstream
//! floating-point statistics are bit-identical. That equality is what
//! lets the event-driven engine reuse the synchronous engine's golden
//! parity fixtures unchanged — enforced end to end by
//! `tests/equivalence.rs`.

use crate::packet::Packet;

/// `slot_of` sentinel: the queue is empty and holds no dense slot.
const NONE: u32 = u32::MAX;

/// Bookkeeping for one *active* (non-empty) queue: the same fields as
/// `QueueArena`'s `QueueMeta`, scoped to the current non-empty episode.
#[derive(Debug, Clone, Copy)]
struct ActiveRec {
    /// The flat queue index this dense slot currently serves.
    q: u32,
    /// Ring-buffer head offset.
    head: u16,
    /// Current length (invariant: > 0 between operations — a drained
    /// queue is released immediately).
    len: u16,
    /// Largest occupancy observed this episode.
    high_water: u16,
    /// Shared-sample-counter value at the last flush.
    flushed_at: u64,
    /// Cumulative occupancy over flushed sample points, this episode.
    occupancy_sum: u64,
    /// Packets carried over the queue's link, this episode.
    carried: u64,
}

/// A flat-indexed arena of bounded FIFO ring buffers that stores only the
/// non-empty queues densely. Drop-in accounting twin of
/// [`crate::QueueArena`] (same `push`/`pop`/`pop_carried`/`head`/`tick`
/// vocabulary, identical statistics).
#[derive(Debug)]
pub struct ActiveArena {
    capacity: usize,
    /// Flat queue index → dense slot ([`NONE`] = empty, inactive).
    slot_of: Vec<u32>,
    /// Dense records, parallel to `capacity`-sized chunks of `slab`.
    active: Vec<ActiveRec>,
    /// `active.len() * capacity` packet slots.
    slab: Vec<Packet>,
    /// Recycled dense slots.
    free: Vec<u32>,
    /// Per-queue occupancy integral folded from completed episodes.
    total_sum: Vec<u64>,
    /// Per-queue all-time high-water mark from completed episodes.
    total_high: Vec<u16>,
    /// Per-queue carried count from completed episodes.
    total_carried: Vec<u64>,
    /// Queue indices that have ever been activated, in first-activation
    /// order (deduplicated via `ever`). The end-of-run statistics folds
    /// visit only these: a never-activated queue contributes exactly
    /// `0`/`0.0` to every fold, so skipping it is byte-identical — and
    /// it keeps the finisher proportional to the traffic, not the
    /// network.
    touched: Vec<u32>,
    /// Has queue `q` ever been activated?
    ever: Vec<bool>,
    /// Shared sample counter (one tick per simulated cycle).
    samples: u64,
}

impl ActiveArena {
    /// Creates `queues` empty ring buffers of `capacity` packets each
    /// (same bounds as [`crate::QueueArena::new`]).
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0` or `capacity > u16::MAX`.
    pub fn new(queues: usize, capacity: usize) -> Self {
        assert!(capacity > 0, "queue capacity must be positive");
        assert!(
            capacity <= u16::MAX as usize,
            "queue capacity {capacity} exceeds the arena's u16 ring offsets"
        );
        ActiveArena {
            capacity,
            slot_of: vec![NONE; queues],
            active: Vec::new(),
            slab: Vec::new(),
            free: Vec::new(),
            total_sum: vec![0; queues],
            total_high: vec![0; queues],
            total_carried: vec![0; queues],
            touched: Vec::new(),
            ever: vec![false; queues],
            samples: 0,
        }
    }

    /// Number of queues in the arena.
    pub fn queue_count(&self) -> usize {
        self.slot_of.len()
    }

    /// Current number of packets queued in queue `q`.
    #[inline]
    pub fn len(&self, q: usize) -> usize {
        match self.slot_of[q] {
            NONE => 0,
            slot => self.active[slot as usize].len as usize,
        }
    }

    /// Is queue `q` empty?
    #[inline]
    pub fn is_empty(&self, q: usize) -> bool {
        self.slot_of[q] == NONE
    }

    /// Is queue `q` at capacity?
    #[inline]
    pub fn is_full(&self, q: usize) -> bool {
        match self.slot_of[q] {
            NONE => false,
            slot => self.active[slot as usize].len as usize >= self.capacity,
        }
    }

    /// Credits the episode's current length for all sample points since
    /// the last mutation (identical to `QueueArena::flush_occupancy`).
    #[inline]
    fn flush(rec: &mut ActiveRec, samples: u64) {
        let pending = samples - rec.flushed_at;
        if pending > 0 {
            rec.occupancy_sum += rec.len as u64 * pending;
            rec.flushed_at = samples;
        }
    }

    /// Starts a non-empty episode for queue `q`: the span since the last
    /// drain contributed length `0`, so the fresh record opens flushed at
    /// the current sample count with a zero sum.
    #[inline]
    fn activate(&mut self, q: usize) -> usize {
        if !self.ever[q] {
            self.ever[q] = true;
            self.touched.push(q as u32);
        }
        let slot = match self.free.pop() {
            Some(slot) => slot as usize,
            None => {
                let slot = self.active.len();
                self.active.push(ActiveRec {
                    q: 0,
                    head: 0,
                    len: 0,
                    high_water: 0,
                    flushed_at: 0,
                    occupancy_sum: 0,
                    carried: 0,
                });
                self.slab
                    .resize(self.active.len() * self.capacity, Packet::new(0, 0));
                slot
            }
        };
        self.active[slot] = ActiveRec {
            q: q as u32,
            head: 0,
            len: 0,
            high_water: 0,
            flushed_at: self.samples,
            occupancy_sum: 0,
            carried: 0,
        };
        self.slot_of[q] = slot as u32;
        slot
    }

    /// Ends queue `q`'s episode (it just drained): folds the episode's
    /// statistics into the persistent per-queue totals and recycles the
    /// dense slot.
    #[inline]
    fn release(&mut self, q: usize, slot: usize) {
        let rec = self.active[slot];
        debug_assert_eq!(rec.q as usize, q, "slot map out of sync");
        debug_assert_eq!(rec.len, 0, "releasing a non-empty queue");
        debug_assert_eq!(rec.flushed_at, self.samples, "releasing an unflushed queue");
        self.total_sum[q] += rec.occupancy_sum;
        self.total_high[q] = self.total_high[q].max(rec.high_water);
        self.total_carried[q] += rec.carried;
        self.slot_of[q] = NONE;
        self.free.push(slot as u32);
    }

    /// Enqueues `packet` on queue `q`; returns `false` (leaving the queue
    /// unchanged) when full.
    #[inline]
    pub fn push(&mut self, q: usize, packet: Packet) -> bool {
        let slot = match self.slot_of[q] {
            NONE => self.activate(q),
            slot => slot as usize,
        };
        let samples = self.samples;
        let rec = &mut self.active[slot];
        if rec.len as usize >= self.capacity {
            return false;
        }
        Self::flush(rec, samples);
        let mut pos = rec.head as usize + rec.len as usize;
        if pos >= self.capacity {
            pos -= self.capacity;
        }
        rec.len += 1;
        rec.high_water = rec.high_water.max(rec.len);
        self.slab[slot * self.capacity + pos] = packet;
        true
    }

    /// Dequeues the head packet of queue `q`, if any.
    #[inline]
    pub fn pop(&mut self, q: usize) -> Option<Packet> {
        let slot = match self.slot_of[q] {
            NONE => return None,
            slot => slot as usize,
        };
        let samples = self.samples;
        let rec = &mut self.active[slot];
        Self::flush(rec, samples);
        let pos = rec.head as usize;
        let next = pos + 1;
        rec.head = if next == self.capacity { 0 } else { next } as u16;
        rec.len -= 1;
        let drained = rec.len == 0;
        let packet = self.slab[slot * self.capacity + pos];
        if drained {
            self.release(q, slot);
        }
        Some(packet)
    }

    /// Dequeues the head packet of queue `q` and counts it as carried
    /// over the queue's link. The queue must be non-empty.
    #[inline]
    pub fn pop_carried(&mut self, q: usize) -> Packet {
        let slot = self.slot_of[q];
        debug_assert_ne!(slot, NONE, "pop_carried on an empty queue");
        let slot = slot as usize;
        let samples = self.samples;
        let rec = &mut self.active[slot];
        Self::flush(rec, samples);
        let pos = rec.head as usize;
        let next = pos + 1;
        rec.head = if next == self.capacity { 0 } else { next } as u16;
        rec.len -= 1;
        rec.carried += 1;
        let drained = rec.len == 0;
        let packet = self.slab[slot * self.capacity + pos];
        if drained {
            self.release(q, slot);
        }
        packet
    }

    /// Peeks at the head packet of queue `q`.
    #[inline]
    pub fn head(&self, q: usize) -> Option<&Packet> {
        match self.slot_of[q] {
            NONE => None,
            slot => {
                let rec = &self.active[slot as usize];
                Some(&self.slab[slot as usize * self.capacity + rec.head as usize])
            }
        }
    }

    /// Queue indices ever activated, in first-activation order (each
    /// exactly once). Every queue with a non-zero statistic is in here;
    /// callers that need ascending order must sort.
    pub fn touched_queues(&self) -> &[u32] {
        &self.touched
    }

    /// Number of live (non-empty) queues across the whole arena.
    #[inline]
    pub fn live_count(&self) -> usize {
        self.active.len() - self.free.len()
    }

    /// Calls `f` with the flat index of every live queue, in arbitrary
    /// order. Freed slots keep `len == 0` (release asserts it), so a
    /// non-zero length identifies exactly the live records.
    #[inline]
    pub fn for_each_live(&self, mut f: impl FnMut(u32)) {
        for rec in &self.active {
            if rec.len > 0 {
                f(rec.q);
            }
        }
    }

    /// Records one occupancy sample point for every queue (call once per
    /// cycle); O(1) like [`crate::QueueArena::tick`].
    #[inline]
    pub fn tick(&mut self) {
        self.samples += 1;
    }

    /// Advances the sample counter by `span` cycles in one jump — the
    /// event-driven engine's idle-span skip. Exactly equivalent to `span`
    /// ticks: the lazy flush credits each active queue's standing length
    /// for the whole span on its next mutation, and inactive queues
    /// contribute `0` either way.
    #[inline]
    pub fn fast_forward(&mut self, span: u64) {
        self.samples += span;
    }

    /// Packets carried over queue `q`'s link so far.
    pub fn carried(&self, q: usize) -> u64 {
        let mut total = self.total_carried[q];
        if let Some(&slot) = self.slot_of.get(q) {
            if slot != NONE {
                total += self.active[slot as usize].carried;
            }
        }
        total
    }

    /// Largest occupancy ever observed on queue `q`.
    pub fn high_water(&self, q: usize) -> usize {
        let mut high = self.total_high[q];
        if self.slot_of[q] != NONE {
            high = high.max(self.active[self.slot_of[q] as usize].high_water);
        }
        high as usize
    }

    /// Mean occupancy of queue `q` over all sample points (0.0 when never
    /// sampled) — the same value [`crate::QueueArena::mean_occupancy`]
    /// computes: completed episodes' sums, the live episode's flushed
    /// sum, and the pending unflushed span, all in `u64`, divided once.
    pub fn mean_occupancy(&self, q: usize) -> f64 {
        if self.samples == 0 {
            return 0.0;
        }
        let mut total = self.total_sum[q];
        if self.slot_of[q] != NONE {
            let rec = &self.active[self.slot_of[q] as usize];
            let pending = self.samples - rec.flushed_at;
            total += rec.occupancy_sum + rec.len as u64 * pending;
        }
        total as f64 / self.samples as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queue::QueueArena;
    use iadm_rng::{Rng, StdRng};

    fn pkt(id: u64) -> Packet {
        Packet::new(id as usize, 0)
    }

    #[test]
    fn fifo_order_and_independence() {
        let mut a = ActiveArena::new(4, 3);
        assert!(a.push(0, pkt(1)));
        assert!(a.push(0, pkt(2)));
        assert!(a.push(3, pkt(9)));
        assert_eq!(a.pop(0).unwrap().dest, 1);
        assert_eq!(a.pop(0).unwrap().dest, 2);
        assert_eq!(a.pop(0), None);
        assert_eq!(a.pop(3).unwrap().dest, 9);
    }

    #[test]
    fn rejects_when_full_and_reports_len() {
        let mut a = ActiveArena::new(1, 2);
        assert!(!a.is_full(0), "an inactive queue is empty, not full");
        assert!(a.push(0, pkt(1)));
        assert!(a.push(0, pkt(2)));
        assert!(a.is_full(0));
        assert!(!a.push(0, pkt(3)));
        assert_eq!(a.len(0), 2);
    }

    #[test]
    fn dense_slots_recycle_across_episodes() {
        // Draining a queue frees its slot; a different queue's next
        // activation reuses it, keeping the dense set proportional to the
        // non-empty queues rather than the ever-touched ones.
        let mut a = ActiveArena::new(100, 2);
        a.push(7, pkt(1));
        a.pop(7);
        a.push(42, pkt(2));
        assert_eq!(a.active.len(), 1, "one slot serves both episodes");
        assert_eq!(a.head(42).unwrap().dest, 2);
        assert!(a.is_empty(7));
    }

    #[test]
    fn statistics_survive_episode_boundaries() {
        let mut a = ActiveArena::new(2, 4);
        a.push(0, pkt(1));
        a.tick(); // one sample at length 1
        assert_eq!(a.pop_carried(0).dest, 1); // episode ends
        a.tick();
        a.tick(); // two samples at length 0
        a.push(0, pkt(2)); // second episode
        a.tick(); // one sample at length 1
        assert_eq!(a.carried(0), 1);
        assert_eq!(a.high_water(0), 1);
        assert!((a.mean_occupancy(0) - 2.0 / 4.0).abs() < 1e-12);
    }

    /// The load-bearing contract: a random operation soup produces
    /// exactly the statistics the flat arena produces, episode folds,
    /// idle spans, fast-forward jumps and all.
    #[test]
    fn matches_queue_arena_exactly_under_random_soup() {
        let queues = 13;
        let capacity = 3;
        let mut flat = QueueArena::new(queues, capacity);
        let mut dense = ActiveArena::new(queues, capacity);
        let mut rng = StdRng::seed_from_u64(0xACED);
        for _ in 0..5000 {
            let q = rng.gen_range(0..queues);
            match rng.gen_range(0..6) {
                0 | 1 => {
                    let p = pkt(rng.gen_range(0..queues) as u64);
                    assert_eq!(flat.push(q, p), dense.push(q, p));
                }
                2 => {
                    let a = flat.pop(q);
                    let b = dense.pop(q);
                    assert_eq!(a.map(|p| p.dest), b.map(|p| p.dest));
                }
                3 => {
                    if flat.len(q) > 0 {
                        assert_eq!(flat.pop_carried(q).dest, dense.pop_carried(q).dest);
                    }
                }
                4 => {
                    flat.tick();
                    dense.tick();
                }
                _ => {
                    // Idle span: the flat arena ticks cycle by cycle, the
                    // dense one jumps — the integrals must not notice.
                    let span = rng.gen_range(1..20) as u64;
                    for _ in 0..span {
                        flat.tick();
                    }
                    dense.fast_forward(span);
                }
            }
            assert_eq!(flat.len(q), dense.len(q));
            assert_eq!(flat.is_full(q), dense.is_full(q));
            assert_eq!(flat.head(q).map(|p| p.dest), dense.head(q).map(|p| p.dest));
        }
        for q in 0..queues {
            assert_eq!(flat.carried(q), dense.carried(q), "queue {q} carried");
            assert_eq!(flat.high_water(q), dense.high_water(q), "queue {q} peak");
            let fm = flat.mean_occupancy(q);
            let dm = dense.mean_occupancy(q);
            assert!(
                fm.to_bits() == dm.to_bits(),
                "queue {q} mean occupancy diverged: {fm} vs {dm}"
            );
        }
    }

    #[test]
    #[should_panic]
    fn zero_capacity_rejected() {
        let _ = ActiveArena::new(1, 0);
    }
}
