//! Packets: the simulated messages.

use iadm_core::TsdtTag;

/// A message in flight: carries only its destination tag (the paper's
/// point — no distance computation anywhere) plus bookkeeping for
/// statistics. Under the TSDT sender-computed policy it additionally
/// carries the 2n-bit TSDT tag the sender derived from the global
/// blockage map.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Packet {
    /// Unique id, assigned at injection in injection order.
    pub id: u64,
    /// Source port.
    pub source: usize,
    /// Destination port — also the routing tag (Theorem 3.1).
    pub dest: usize,
    /// Cycle at which the packet entered its source queue.
    pub injected_at: u64,
    /// Sender-computed TSDT tag, when the TSDT policy is in force.
    pub tag: Option<TsdtTag>,
}

impl Packet {
    /// Creates an untagged packet (destination-address routing only).
    pub fn new(id: u64, source: usize, dest: usize, injected_at: u64) -> Self {
        Packet {
            id,
            source,
            dest,
            injected_at,
            tag: None,
        }
    }

    /// Creates a packet carrying a sender-computed TSDT tag.
    pub fn with_tag(id: u64, source: usize, dest: usize, injected_at: u64, tag: TsdtTag) -> Self {
        Packet {
            id,
            source,
            dest,
            injected_at,
            tag: Some(tag),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructor_stores_fields() {
        let p = Packet::new(7, 1, 6, 100);
        assert_eq!(p.id, 7);
        assert_eq!(p.source, 1);
        assert_eq!(p.dest, 6);
        assert_eq!(p.injected_at, 100);
    }
}
