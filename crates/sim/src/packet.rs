//! Packets: the simulated messages.

use iadm_core::TsdtTag;
use iadm_workload::NO_OP;

/// A message in flight: carries only its destination tag (the paper's
/// point — no distance computation anywhere) plus the injection cycle for
/// latency statistics. Under the TSDT sender-computed policy it
/// additionally carries the state half of the 2n-bit TSDT tag the sender
/// derived from the global blockage map (the destination half *is*
/// [`Packet::dest`], and the network size is the simulator's — so the
/// full [`TsdtTag`] can be reconstructed). Workload-tracked packets also
/// carry their operation id ([`Packet::op`]; `NO_OP` for open-loop
/// traffic), so the engine can tell the workload which request a
/// delivery or loss belonged to. Nothing else travels: no packet id, no
/// source — and at 16 bytes four packets share a cache line in the queue
/// arena, which the N = 1024 hot path depends on (the TSDT state word is
/// sentinel-packed into a bare `u32` rather than an 8-byte `Option` to
/// make room for `op`).
///
/// In wormhole mode these same fields seed a worm verbatim (the worm's
/// head flit carries them; body flits carry nothing), so the source
/// queues hold ordinary `Packet`s in both switching modes and the
/// arrival path is mode-independent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Packet {
    /// Destination port — also the routing tag (Theorem 3.1).
    pub dest: u32,
    /// Cycle at which the packet entered its source queue.
    pub injected_at: u32,
    /// State bits of the sender-computed TSDT tag, or the
    /// [`Packet::NO_TAG`] sentinel. A real state word has one bit per
    /// stage (≤ 31 bits), so the sentinel is unreachable.
    tag_bits: u32,
    /// Workload operation id, or [`iadm_workload::NO_OP`] for untracked
    /// (open-loop) traffic.
    pub op: u32,
}

impl Packet {
    /// Sentinel in `tag_bits` marking an untagged packet.
    const NO_TAG: u32 = u32::MAX;

    /// Creates an untagged packet (destination-address routing only).
    /// `injected_at` must fit the packet's 32-bit timestamp field —
    /// `SimConfig::validate` rejects longer runs up front.
    pub fn new(dest: usize, injected_at: u64) -> Self {
        debug_assert!(
            injected_at <= u64::from(u32::MAX),
            "injection cycle {injected_at} overflows the 32-bit timestamp"
        );
        Packet {
            dest: dest as u32,
            injected_at: injected_at as u32,
            tag_bits: Packet::NO_TAG,
            op: NO_OP,
        }
    }

    /// Creates a packet carrying a sender-computed TSDT tag. The tag's
    /// destination bits must agree with `dest` (they are stored once);
    /// `injected_at` must fit the 32-bit timestamp field.
    pub fn with_tag(dest: usize, injected_at: u64, tag: TsdtTag) -> Self {
        debug_assert_eq!(tag.dest(), dest, "tag must route to the packet's dest");
        debug_assert!(
            injected_at <= u64::from(u32::MAX),
            "injection cycle {injected_at} overflows the 32-bit timestamp"
        );
        let tag_bits = tag.state_bits() as u32;
        debug_assert_ne!(tag_bits, Packet::NO_TAG, "state word hit the sentinel");
        Packet {
            dest: dest as u32,
            injected_at: injected_at as u32,
            tag_bits,
            op: NO_OP,
        }
    }

    /// Stamps the packet with a workload operation id.
    pub fn with_op(mut self, op: u32) -> Self {
        self.op = op;
        self
    }

    /// The TSDT state word, when the sender computed one.
    #[inline]
    pub fn tag_state(&self) -> Option<u32> {
        if self.tag_bits == Packet::NO_TAG {
            None
        } else {
            Some(self.tag_bits)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iadm_topology::Size;

    #[test]
    fn constructor_stores_fields() {
        let p = Packet::new(6, 100);
        assert_eq!(p.dest, 6);
        assert_eq!(p.injected_at, 100);
        assert_eq!(p.tag_state(), None);
        assert_eq!(p.op, NO_OP);
    }

    #[test]
    fn tagged_constructor_keeps_state_bits_only() {
        let size = Size::new(8).unwrap();
        let tag = TsdtTag::with_state(size, 6, 0b011);
        let p = Packet::with_tag(6, 100, tag);
        assert_eq!(p.dest, 6, "destination half lives in dest");
        assert_eq!(p.tag_state(), Some(0b011));
    }

    #[test]
    fn op_stamp_survives_the_builder() {
        let p = Packet::new(3, 7).with_op(42);
        assert_eq!(p.op, 42);
        assert_eq!(p.tag_state(), None);
        let size = Size::new(8).unwrap();
        let tagged = Packet::with_tag(6, 9, TsdtTag::with_state(size, 6, 0)).with_op(8);
        assert_eq!(tagged.op, 8);
        assert_eq!(tagged.tag_state(), Some(0));
    }

    #[test]
    fn packet_fits_in_a_quarter_cache_line() {
        // The queue arena's memory footprint (and thus the simulator's
        // cache behavior at N = 1024) depends on this staying small.
        assert!(std::mem::size_of::<Packet>() <= 16);
    }
}
