//! Circuit switching: blocking probability under busy-link contention.
//!
//! The paper's blockage notion covers links that are "faulty **or busy**",
//! and its rerouting schemes are motivated for both. This module models
//! the busy case directly: circuit-switched connections hold every link of
//! their path exclusively for their duration, and a new request must find
//! a path through the links that remain free — exactly a [`BlockageMap`]
//! query, so Algorithm REROUTE doubles as the circuit path-finder. The
//! classic metric is the *blocking probability*: the fraction of requests
//! that find no free path.
//!
//! Two establishment policies mirror the networks' capabilities:
//!
//! * [`CircuitPolicy::ICubeOnly`] — only the unique embedded-ICube path
//!   may be used (the zero-redundancy baseline);
//! * [`CircuitPolicy::IadmReroute`] — any IADM path, found by the paper's
//!   universal REROUTE over the busy map.

use iadm_core::icube_routing;
use iadm_core::reroute::reroute_from;
use iadm_core::TsdtTag;
use iadm_fault::BlockageMap;
use iadm_rng::{Rng, StdRng};
use iadm_topology::{Link, Path, Size};

/// Configuration of a circuit-switching run.
#[derive(Debug, Clone, Copy)]
pub struct CircuitConfig {
    /// Network size.
    pub size: Size,
    /// Probability an idle source requests a circuit each slot.
    pub arrival_prob: f64,
    /// Mean circuit holding time in slots (geometric, minimum 1).
    pub mean_hold: f64,
    /// Slots to simulate.
    pub slots: usize,
    /// Slots excluded from statistics while occupancy ramps up.
    pub warmup: usize,
    /// RNG seed.
    pub seed: u64,
}

/// How a new circuit's path is chosen.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CircuitPolicy {
    /// Only the unique ICube path; blocked if any of its links is busy.
    ICubeOnly,
    /// Any IADM path via Algorithm REROUTE over the busy-link map.
    IadmReroute,
}

/// Results of a circuit-switching run.
#[derive(Debug, Clone, Default)]
pub struct CircuitStats {
    /// Connection requests made after warm-up.
    pub requests: u64,
    /// Requests that established a circuit.
    pub established: u64,
    /// Requests blocked (no free path under the policy).
    pub blocked: u64,
    /// Slot-summed count of links held by active circuits (for mean
    /// utilization).
    pub busy_link_slots: u64,
    /// Slots measured (after warm-up).
    pub measured_slots: u64,
}

impl CircuitStats {
    /// The blocking probability `blocked / requests` (0.0 when idle).
    pub fn blocking_probability(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            self.blocked as f64 / self.requests as f64
        }
    }

    /// Mean fraction of the network's `3·N·n` links held busy.
    pub fn mean_link_utilization(&self, size: Size) -> f64 {
        if self.measured_slots == 0 {
            0.0
        } else {
            self.busy_link_slots as f64
                / (self.measured_slots as f64 * Link::slot_count(size) as f64)
        }
    }
}

/// One active circuit.
struct Circuit {
    source: usize,
    links: Vec<Link>,
    remaining: u64,
}

/// Runs a circuit-switching simulation: Bernoulli arrivals per idle source
/// (one circuit per source at a time), geometric holding times, exclusive
/// link occupancy, and the chosen path policy over the union of `faults`
/// and the currently busy links.
///
/// # Panics
///
/// Panics if `arrival_prob` is outside `[0, 1]`, `mean_hold < 1`, or the
/// fault map size mismatches.
pub fn run_circuit(
    config: CircuitConfig,
    policy: CircuitPolicy,
    faults: &BlockageMap,
) -> CircuitStats {
    assert!(
        (0.0..=1.0).contains(&config.arrival_prob),
        "arrival probability out of range"
    );
    assert!(config.mean_hold >= 1.0, "mean hold must be at least 1 slot");
    assert_eq!(faults.size(), config.size, "fault map size mismatch");
    let size = config.size;
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut busy = faults.clone();
    let mut circuits: Vec<Circuit> = Vec::new();
    let mut source_active = vec![false; size.n()];
    let mut stats = CircuitStats::default();
    let release_prob = 1.0 / config.mean_hold;

    for slot in 0..config.slots {
        let measuring = slot >= config.warmup;
        // Tear down expiring circuits.
        circuits.retain_mut(|c| {
            if c.remaining <= 1 {
                for &link in &c.links {
                    busy.unblock(link);
                }
                source_active[c.source] = false;
                false
            } else {
                c.remaining -= 1;
                true
            }
        });
        // New requests from idle sources.
        for s in size.switches() {
            if source_active[s] || !rng.gen_bool(config.arrival_prob) {
                continue;
            }
            let d = rng.gen_range(0..size.n());
            if measuring {
                stats.requests += 1;
            }
            let path: Option<Path> = match policy {
                CircuitPolicy::ICubeOnly => {
                    let p = icube_routing::route(size, s, d);
                    busy.path_is_free(&p).then_some(p)
                }
                CircuitPolicy::IadmReroute => reroute_from(&busy, s, TsdtTag::new(size, d))
                    .ok()
                    .map(|tag| iadm_core::route::trace_tsdt(size, s, &tag)),
            };
            match path {
                Some(p) => {
                    let links = p.links(size);
                    for &link in &links {
                        busy.block(link);
                    }
                    // Geometric holding time with mean `mean_hold`.
                    let mut hold = 1u64;
                    while !rng.gen_bool(release_prob) && hold < 10_000 {
                        hold += 1;
                    }
                    circuits.push(Circuit {
                        source: s,
                        links,
                        remaining: hold,
                    });
                    source_active[s] = true;
                    if measuring {
                        stats.established += 1;
                    }
                }
                None => {
                    if measuring {
                        stats.blocked += 1;
                    }
                }
            }
        }
        if measuring {
            stats.measured_slots += 1;
            stats.busy_link_slots += circuits.iter().map(|c| c.links.len() as u64).sum::<u64>();
        }
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config(load: f64, slots: usize) -> CircuitConfig {
        CircuitConfig {
            size: Size::new(16).unwrap(),
            arrival_prob: load,
            mean_hold: 6.0,
            slots,
            warmup: slots / 5,
            seed: 77,
        }
    }

    #[test]
    fn zero_load_makes_no_requests() {
        let faults = BlockageMap::new(Size::new(16).unwrap());
        let stats = run_circuit(config(0.0, 500), CircuitPolicy::IadmReroute, &faults);
        assert_eq!(stats.requests, 0);
        assert_eq!(stats.blocking_probability(), 0.0);
    }

    #[test]
    fn accounting_is_consistent() {
        let faults = BlockageMap::new(Size::new(16).unwrap());
        for policy in [CircuitPolicy::ICubeOnly, CircuitPolicy::IadmReroute] {
            let stats = run_circuit(config(0.3, 2000), policy, &faults);
            assert_eq!(stats.requests, stats.established + stats.blocked);
            assert!(stats.blocking_probability() <= 1.0);
            assert!(stats.mean_link_utilization(Size::new(16).unwrap()) <= 1.0);
        }
    }

    #[test]
    fn rerouting_reduces_blocking() {
        // The paper's point, in circuit form: with alternate paths, busy
        // links block far fewer connections.
        let faults = BlockageMap::new(Size::new(16).unwrap());
        let icube = run_circuit(config(0.4, 4000), CircuitPolicy::ICubeOnly, &faults);
        let iadm = run_circuit(config(0.4, 4000), CircuitPolicy::IadmReroute, &faults);
        assert!(icube.requests > 500, "enough samples: {}", icube.requests);
        assert!(
            iadm.blocking_probability() < icube.blocking_probability(),
            "IADM {} vs ICube {}",
            iadm.blocking_probability(),
            icube.blocking_probability()
        );
    }

    #[test]
    fn blocking_grows_with_load() {
        let faults = BlockageMap::new(Size::new(16).unwrap());
        let low = run_circuit(config(0.1, 3000), CircuitPolicy::IadmReroute, &faults);
        let high = run_circuit(config(0.8, 3000), CircuitPolicy::IadmReroute, &faults);
        assert!(high.blocking_probability() >= low.blocking_probability());
    }

    #[test]
    fn faults_add_to_busy_links() {
        // Permanently fault one stage's nonstraight links: blocking rises
        // versus the fault-free network under the same seed/load.
        let size = Size::new(16).unwrap();
        let clean = BlockageMap::new(size);
        let burst = iadm_fault::scenario::stage_nonstraight_burst(size, 1);
        let a = run_circuit(config(0.4, 3000), CircuitPolicy::IadmReroute, &clean);
        let b = run_circuit(config(0.4, 3000), CircuitPolicy::IadmReroute, &burst);
        assert!(b.blocking_probability() > a.blocking_probability());
    }

    use iadm_check::{check, check_assert, check_assert_eq};
    use iadm_topology::LinkKind;

    check! {
        // The paper's redundancy claim as a *pointwise* property, not a
        // statistical one: the embedded-ICube path is one of the IADM
        // paths, so on ANY busy map a request the ICube policy can
        // establish is also establishable by REROUTE — and therefore the
        // ICube blocking count dominates the REROUTE blocking count on
        // any shared request sequence. (End-to-end `run_circuit` runs
        // diverge in RNG consumption once one policy establishes a
        // circuit the other blocks, so the coupling has to happen at the
        // decision level, on one map.)
        fn prop_icube_blocking_dominates_reroute_on_any_busy_map(g; cases = 128) {
            let size = Size::new([8, 16][g.usize_in(0..=1)]).unwrap();
            let p = g.f64_in(0.0..0.35);
            let mut rng = g.rng();
            let mut busy = BlockageMap::new(size);
            for stage in size.stage_indices() {
                for sw in size.switches() {
                    for kind in LinkKind::ALL {
                        if rng.gen_bool(p) {
                            busy.block(Link::new(stage, sw, kind));
                        }
                    }
                }
            }
            let mut icube_blocked = 0u32;
            let mut reroute_blocked = 0u32;
            for _ in 0..16 {
                let s = rng.gen_range(0..size.n());
                let d = rng.gen_range(0..size.n());
                let icube_free = busy.path_is_free(&icube_routing::route(size, s, d));
                let rerouted = reroute_from(&busy, s, TsdtTag::new(size, d)).ok();
                if icube_free {
                    check_assert!(
                        rerouted.is_some(),
                        "REROUTE must establish whenever the ICube path is free"
                    );
                }
                if let Some(tag) = rerouted {
                    // An established circuit only holds free links.
                    let path = iadm_core::route::trace_tsdt(size, s, &tag);
                    check_assert!(busy.path_is_free(&path));
                    check_assert_eq!(path.destination(size), d);
                }
                icube_blocked += u32::from(!icube_free);
                reroute_blocked += u32::from(rerouted.is_none());
            }
            check_assert!(icube_blocked >= reroute_blocked);
        }

        // `run_circuit` is a pure function of (config, policy, faults):
        // replaying a seed reproduces the stats exactly, and the request
        // ledger always balances. This is what makes any observed
        // blocking-probability gap reportable — the run is replayable.
        fn prop_run_circuit_replays_exactly_from_its_seed(g; cases = 24) {
            let size = Size::new(8).unwrap();
            let config = CircuitConfig {
                size,
                arrival_prob: g.f64_in(0.0..0.8),
                mean_hold: 1.0 + g.f64_in(0.0..8.0),
                slots: 400,
                warmup: 80,
                seed: g.u64_any(),
            };
            let faults = BlockageMap::new(size);
            for policy in [CircuitPolicy::ICubeOnly, CircuitPolicy::IadmReroute] {
                let a = run_circuit(config, policy, &faults);
                let b = run_circuit(config, policy, &faults);
                check_assert_eq!(a.requests, b.requests);
                check_assert_eq!(a.established, b.established);
                check_assert_eq!(a.blocked, b.blocked);
                check_assert_eq!(a.busy_link_slots, b.busy_link_slots);
                check_assert_eq!(a.requests, a.established + a.blocked);
            }
        }
    }

    #[test]
    fn circuits_release_their_links() {
        // After the run, re-running at zero arrivals from the same state is
        // impossible to observe directly (internal); instead check that a
        // short low-load run ends with low utilization — circuits are
        // being torn down, not leaking.
        let faults = BlockageMap::new(Size::new(16).unwrap());
        let stats = run_circuit(config(0.05, 4000), CircuitPolicy::IadmReroute, &faults);
        assert!(
            stats.mean_link_utilization(Size::new(16).unwrap()) < 0.2,
            "{}",
            stats.mean_link_utilization(Size::new(16).unwrap())
        );
    }
}
