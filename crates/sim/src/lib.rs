//! A packet-switching simulator for the IADM network, with two
//! interchangeable scheduling cores: the synchronous (cycle-driven)
//! engine and an event-driven engine that skips idle work
//! ([`EngineKind`]; both produce byte-identical statistics, enforced by
//! `tests/equivalence.rs`).
//!
//! The paper motivates the SSDT scheme's state choice as a *load balancing*
//! device: "Assume that each nonstraight link has an associated buffer
//! (queue). When both nonstraight links are busy due to message traffic
//! congestion, a switch can choose which nonstraight buffer to assign a
//! message to … based on the number of messages present in the buffers in
//! order to evenly distribute the message load to the nonstraight links."
//! The authors had no testbed; this simulator is the synthetic equivalent
//! (see DESIGN.md): store-and-forward switches with one bounded FIFO per
//! output link, one link transfer per cycle, and pluggable routing
//! policies, so the claim becomes measurable (experiment E7). Switches are
//! single-input (IADM) by default or `3x3` crossbars (Gamma) via
//! [`Simulator::with_crossbar_switches`]; a circuit-switched mode with
//! exclusive link occupancy and blocking-probability statistics lives in
//! [`circuit`] (experiment E12); a wormhole mode where packets pipeline
//! as flits over chains of reserved link lanes is enabled by
//! [`Simulator::with_wormhole_switching`] (experiment E16, pinned by the
//! flit-conservation suite in `tests/wormhole.rs`).
//!
//! # Example
//!
//! ```
//! use iadm_sim::{EngineKind, Simulator, SimConfig, RoutingPolicy, TrafficPattern};
//! use iadm_topology::Size;
//!
//! # fn main() -> Result<(), iadm_topology::SizeError> {
//! let config = SimConfig {
//!     size: Size::new(8)?,
//!     queue_capacity: 4,
//!     cycles: 200,
//!     warmup: 50,
//!     offered_load: 0.5,
//!     seed: 42,
//!     engine: EngineKind::Synchronous,
//! };
//! let stats = Simulator::new(config, RoutingPolicy::SsdtBalance, TrafficPattern::Uniform)
//!     .run();
//! assert!(stats.delivered > 0);
//! assert_eq!(stats.misrouted, 0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod active;
pub mod circuit;
mod engine;
mod event;
mod packet;
mod queue;
mod stats;

// The histogram and traffic-pattern types moved to `iadm-workload`
// together with the rest of the workload subsystem; these re-exports
// keep every established `iadm_sim::` path working unchanged.
pub use iadm_workload::histogram;

pub use engine::{
    run_once, EngineKind, LaneLedger, RoutingPolicy, SimConfig, Simulator, SwitchingMode, TagRepair,
};
// Re-exported so campaign engines can prebuild shared route tables for
// [`Simulator::with_shared_lut`] without depending on `iadm-core`.
pub use event::{Event, EventQueue};
pub use iadm_core::lut::RouteLut;
pub use iadm_workload::{
    Adversarial, ClosedLoop, Collective, Injection, LatencyHistogram, OpenLoopSource,
    TrafficPattern, WorkloadSource, WorkloadSpec, WorkloadStats, NO_OP,
};
pub use packet::Packet;
pub use queue::{LaneArbitration, QueueArena, ReservationTable};
pub use stats::SimStats;
