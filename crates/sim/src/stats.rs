//! Simulation statistics.

use crate::histogram::LatencyHistogram;
use iadm_workload::WorkloadStats;

/// Aggregate results of one simulation run.
#[derive(Debug, Clone, Default)]
pub struct SimStats {
    /// Packets injected into source queues.
    pub injected: u64,
    /// Packets delivered to their destination output.
    pub delivered: u64,
    /// Packets delivered to the *wrong* output (must stay 0; a nonzero
    /// value indicates a routing bug).
    pub misrouted: u64,
    /// Packets dropped because every usable output link was blocked by
    /// faults (only possible in fault scenarios).
    pub dropped: u64,
    /// Packets refused at the source because the sender's REROUTE found no
    /// blockage-free path (TSDT sender policy only; these pairs are
    /// provably disconnected).
    pub refused: u64,
    /// Packets still inside the network or source queues when the run
    /// ended.
    pub in_flight: u64,
    /// Sum of delivery latencies (cycles from injection to delivery) over
    /// delivered packets injected at or after the warm-up cycle (a packet
    /// injected exactly at cycle `warmup` is counted).
    pub latency_sum: u64,
    /// Number of delivered packets counted in `latency_sum`.
    pub latency_count: u64,
    /// Maximum delivery latency observed after warm-up.
    pub latency_max: u64,
    /// Largest link-queue occupancy observed anywhere in the network.
    pub queue_high_water: usize,
    /// Mean link-queue occupancy, averaged over all queues and cycles.
    pub queue_mean_occupancy: f64,
    /// Cycles simulated.
    pub cycles: u64,
    /// Network ports.
    pub ports: usize,
    /// Nonstraight-link load imbalance in `[0, 1]`: per switch,
    /// `|plus_traffic - minus_traffic| / (plus_traffic + minus_traffic)`,
    /// averaged over switches that carried any nonstraight traffic.
    /// `0.0` = the paper's "evenly distributed" ideal; `1.0` = every
    /// switch sent all its nonstraight traffic down one sign (what the
    /// fixed state-C policy does by construction).
    pub nonstraight_imbalance: f64,
    /// The largest number of packets any single link carried.
    pub max_link_load: u64,
    /// Power-of-two-bucketed histogram of delivery latencies (same
    /// population as `latency_sum` / `latency_count`: post-warm-up
    /// deliveries only).
    pub latency_histogram: LatencyHistogram,
    /// Packets carried per stage, summed over the stage's links
    /// (`stage_link_use[i]` = total transfers leaving stage `i`).
    pub stage_link_use: Vec<u64>,
    /// Transient-fault timeline events processed (0 for static runs; the
    /// degradation fields below are only meaningful when this is
    /// nonzero).
    pub fault_events: u64,
    /// Packets steered off their preferred route by fault evasion: SSDT
    /// packets forced onto the spare nonstraight sign because the `ΔC`
    /// candidate was blocked, and TSDT injections whose sender-computed
    /// state word is nonzero (REROUTE bent the path around a blockage).
    pub reroutes: u64,
    /// The subset of `dropped` that occurred while at least one
    /// timeline-failed link was still down — loss attributable to
    /// outages rather than to the steady-state fault pattern.
    pub dropped_during_outage: u64,
    /// Distinct links that failed at least once during the run.
    pub links_failed: u64,
    /// Total link-down cycles summed over all links (one link down for
    /// 200 cycles and two links down for 50 each = 300).
    pub link_downtime_cycles: u64,
    /// The worst per-link availability: `1 - downtime / cycles` of the
    /// most-degraded link (1.0 when nothing failed; 0.0 default for
    /// static runs, where it is meaningless).
    pub availability_min: f64,
    /// Mean per-link availability over all links of the network.
    pub availability_mean: f64,
    /// Timeline events that brought a blocked link back *up* (the repair
    /// subset of `fault_events`; 0 for static runs and failure-only
    /// timelines, which keeps the field out of their JSON artifacts).
    pub repair_events: u64,
    /// TSDT sender re-tags triggered by repair awareness: cache lookups
    /// that missed *only* because a repair had landed since the line was
    /// filled and the cached outcome (a refusal or a bent tag) could have
    /// improved. Always 0 under `TagRepair::Blind`, where senders wait
    /// out epoch turnover instead.
    pub retags_on_repair: u64,
    /// Flits per packet (0 for store-and-forward runs; the flit counters
    /// below are only meaningful when this is nonzero).
    pub flits_per_packet: u64,
    /// Flits injected (wormhole mode: `injected * flits_per_packet`).
    pub flits_injected: u64,
    /// Flits whose worm's tail ejected at an output port.
    pub flits_delivered: u64,
    /// Flits lost when their worm was killed (blocked with no usable
    /// output, or a reserved link went down mid-worm).
    pub flits_dropped: u64,
    /// Flits of packets refused at the source (TSDT sender policy).
    pub flits_refused: u64,
    /// Flits still pipelined through the network or waiting in source
    /// queues when the run ended.
    pub flits_in_flight: u64,
    /// Closed-loop workload accounting (request/flow/collective
    /// completions and end-to-end latency percentiles). All zeros —
    /// `workload.issued == 0` — for open-loop runs, which is what keeps
    /// the workload block out of their JSON artifacts.
    pub workload: WorkloadStats,
    /// The cycle at which steady-state convergence stopped the run
    /// (`Simulator::with_convergence`): the window boundary where two
    /// consecutive non-empty windows' mean latencies agreed within
    /// tolerance. `0` is the sentinel for "not applicable" — detection
    /// off, or the run reached its fixed horizon without converging —
    /// and is unambiguous because a poll can only fire at the end of the
    /// first window, which is at least cycle 1. Keeps the field (and its
    /// JSON emission) out of every pre-convergence artifact.
    pub converged_at_cycle: u64,
}

impl SimStats {
    /// Mean delivery latency in cycles (0.0 when nothing was delivered).
    pub fn mean_latency(&self) -> f64 {
        if self.latency_count == 0 {
            0.0
        } else {
            self.latency_sum as f64 / self.latency_count as f64
        }
    }

    /// Delivered throughput in packets per port per cycle.
    pub fn throughput(&self) -> f64 {
        if self.cycles == 0 || self.ports == 0 {
            0.0
        } else {
            self.delivered as f64 / (self.cycles as f64 * self.ports as f64)
        }
    }

    /// Conservation check: every injected packet is delivered, dropped,
    /// refused at the source, or still in flight.
    pub fn is_conserved(&self) -> bool {
        self.injected == self.delivered + self.dropped + self.refused + self.in_flight
    }

    /// Flit-level conservation check, the wormhole analogue of
    /// [`is_conserved`]: every injected flit is delivered, dropped with
    /// its killed worm, refused at the source, or still pipelined.
    /// Vacuously true for store-and-forward runs (`flits_per_packet == 0`).
    ///
    /// [`is_conserved`]: SimStats::is_conserved
    pub fn flits_conserved(&self) -> bool {
        self.flits_per_packet == 0
            || self.flits_injected
                == self.flits_delivered
                    + self.flits_dropped
                    + self.flits_refused
                    + self.flits_in_flight
    }

    /// The `p`-th latency percentile (`p` in `[0, 1]`) as an upper bound:
    /// the power-of-two bucket edge holding the sample of rank
    /// `ceil(p * count)`, tightened to the observed maximum.
    ///
    /// Edge cases are exact, not bucket artifacts: with **no** recorded
    /// samples every percentile is the documented sentinel `0`
    /// (unambiguous — a real delivery latency is always at least 1
    /// cycle), and with a **single** sample every percentile is that
    /// sample itself (the `latency_max` tightening collapses the bucket's
    /// upper edge onto the one observation).
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    pub fn percentile(&self, p: f64) -> u64 {
        match self.latency_histogram.percentile_bound(p) {
            None => 0,
            Some(bound) => bound.min(self.latency_max),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_latency_handles_empty() {
        assert_eq!(SimStats::default().mean_latency(), 0.0);
    }

    #[test]
    fn derived_metrics() {
        let stats = SimStats {
            injected: 10,
            delivered: 8,
            dropped: 1,
            in_flight: 1,
            latency_sum: 40,
            latency_count: 8,
            latency_max: 9,
            cycles: 100,
            ports: 8,
            ..Default::default()
        };
        assert!((stats.mean_latency() - 5.0).abs() < 1e-9);
        assert!((stats.throughput() - 0.01).abs() < 1e-9);
        assert!(stats.is_conserved());
    }

    #[test]
    fn conservation_detects_loss() {
        let stats = SimStats {
            injected: 10,
            delivered: 8,
            ..Default::default()
        };
        assert!(!stats.is_conserved());
    }

    #[test]
    fn percentile_of_empty_stats_is_the_zero_sentinel() {
        // No samples: the histogram reports None and every percentile is
        // the documented sentinel 0 — impossible as a real latency, which
        // is always >= 1 cycle.
        let stats = SimStats::default();
        for p in [0.0, 0.5, 0.95, 0.99, 1.0] {
            assert_eq!(stats.percentile(p), 0, "p={p}");
        }
        assert_eq!(stats.latency_histogram.percentile_bound(0.5), None);
    }

    #[test]
    fn percentile_of_single_sample_is_exact() {
        // One recorded latency: every percentile is that sample, because
        // the bucket upper bound (7 for the [4,7] bucket) is tightened to
        // the observed maximum — never the bucket-boundary artifact.
        let mut stats = SimStats::default();
        stats.latency_histogram.record(5);
        stats.latency_max = 5;
        stats.latency_sum = 5;
        stats.latency_count = 1;
        for p in [0.0, 0.5, 0.95, 0.99, 1.0] {
            assert_eq!(stats.percentile(p), 5, "p={p}");
        }
        // The bucketed bound alone would have said 7.
        assert_eq!(stats.latency_histogram.percentile_bound(0.5), Some(7));
    }

    #[test]
    fn percentile_single_sample_on_a_bucket_boundary_is_exact() {
        // A sample sitting exactly on a bucket's lower edge (8 opens the
        // [8,15] bucket) must still come back as itself, not 15.
        let mut stats = SimStats::default();
        stats.latency_histogram.record(8);
        stats.latency_max = 8;
        stats.latency_count = 1;
        for p in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(stats.percentile(p), 8, "p={p}");
        }
    }

    #[test]
    fn percentile_is_the_documented_bound_convention() {
        // `SimStats::percentile` and the histogram's `percentile_bound`
        // must never drift apart: the former is definitionally the
        // latter tightened to the observed maximum, with `None` mapped
        // to the scalar sentinel 0 — the exact convention
        // `WorkloadStats::percentile` also follows (pinned in the
        // `percentile_bound` doc).
        let mut stats = SimStats::default();
        for v in [2u64, 5, 9, 33, 120, 121] {
            stats.latency_histogram.record(v);
            stats.latency_max = stats.latency_max.max(v);
        }
        for p in [0.0, 0.25, 0.5, 0.9, 0.95, 0.99, 1.0] {
            let expect = stats
                .latency_histogram
                .percentile_bound(p)
                .map_or(0, |b| b.min(stats.latency_max));
            assert_eq!(stats.percentile(p), expect, "p={p}");
        }
        // p = 0 is the lowest sample's tightened bucket edge (3 for the
        // [2,3] bucket), never a fabricated zero.
        assert_eq!(stats.percentile(0.0), 3);
        // And absence agrees across the API boundary: None upstream is
        // exactly the 0 sentinel downstream.
        let empty = SimStats::default();
        assert_eq!(empty.latency_histogram.percentile_bound(0.5), None);
        assert_eq!(empty.percentile(0.5), 0);
    }

    #[test]
    fn percentile_with_saturated_bucket_collapses_to_max() {
        // All samples in one bucket: p50 == p99 == observed max.
        let mut stats = SimStats::default();
        for v in [8u64, 9, 10, 12, 15] {
            stats.latency_histogram.record(v);
            stats.latency_max = stats.latency_max.max(v);
            stats.latency_sum += v;
            stats.latency_count += 1;
        }
        assert_eq!(stats.percentile(0.50), 15);
        assert_eq!(stats.percentile(0.99), 15);
        // Mean/throughput behavior is unchanged by the histogram.
        assert!((stats.mean_latency() - 54.0 / 5.0).abs() < 1e-12);
        assert_eq!(stats.throughput(), 0.0);
    }

    #[test]
    fn flit_conservation_is_vacuous_for_store_and_forward() {
        // flits_per_packet == 0 marks a store-and-forward run: the flit
        // ledger is all zeros and the check must not fire.
        let stats = SimStats::default();
        assert!(stats.flits_conserved());
    }

    #[test]
    fn flit_conservation_detects_loss() {
        let mut stats = SimStats {
            flits_per_packet: 4,
            flits_injected: 16,
            flits_delivered: 8,
            flits_dropped: 4,
            flits_refused: 0,
            flits_in_flight: 4,
            ..Default::default()
        };
        assert!(stats.flits_conserved());
        stats.flits_in_flight = 3;
        assert!(!stats.flits_conserved());
    }
}
