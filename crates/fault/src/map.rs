//! The global blockage map.

use iadm_topology::{Link, LinkKind, Path, Size};

/// Classification of the output-link blockage situation of one switch,
/// as seen by a routing path arriving at that switch (paper, Section 3).
///
/// For a given source/destination pair, the participating output links of a
/// switch are either its straight link alone or both nonstraight links but
/// never all three (Theorem 3.2), so these are the only cases a router must
/// distinguish.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OutputBlockage {
    /// The link the path wants to use is free.
    Free,
    /// The wanted nonstraight link is blocked but its opposite is free
    /// (rerouted by Corollary 4.1 / an SSDT state flip).
    Nonstraight,
    /// Both nonstraight output links are blocked (Theorem 3.4 backtracking).
    DoubleNonstraight,
    /// The straight output link is blocked (Theorem 3.3 backtracking).
    Straight,
}

/// The network controller's global map of blocked links — the knowledge the
/// paper assumes "accessible to every sender of the messages in order to
/// compute a path to avoid the blockages" (Section 5).
///
/// Links are tracked individually, so the degenerate last stage (where the
/// `+2^{n-1}` and `-2^{n-1}` links join the same switch pair) keeps two
/// independently blockable links, exactly as in the paper.
///
/// A *switch blockage* is modeled per the paper by blocking all of the
/// switch's input links; see [`BlockageMap::block_switch`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockageMap {
    size: Size,
    blocked: Vec<bool>,
    count: usize,
}

impl BlockageMap {
    /// Creates an empty (all links free) map for a network of `size`.
    pub fn new(size: Size) -> Self {
        BlockageMap {
            size,
            blocked: vec![false; Link::slot_count(size)],
            count: 0,
        }
    }

    /// Creates a map with the given links blocked.
    pub fn from_links<I: IntoIterator<Item = Link>>(size: Size, links: I) -> Self {
        let mut map = BlockageMap::new(size);
        for link in links {
            map.block(link);
        }
        map
    }

    /// The network size this map covers.
    pub fn size(&self) -> Size {
        self.size
    }

    /// Marks `link` blocked. Returns whether it was previously free.
    pub fn block(&mut self, link: Link) -> bool {
        let idx = link.flat_index(self.size);
        let was_free = !self.blocked[idx];
        if was_free {
            self.blocked[idx] = true;
            self.count += 1;
        }
        was_free
    }

    /// Marks `link` free. Returns whether it was previously blocked.
    pub fn unblock(&mut self, link: Link) -> bool {
        let idx = link.flat_index(self.size);
        let was_blocked = self.blocked[idx];
        if was_blocked {
            self.blocked[idx] = false;
            self.count -= 1;
        }
        was_blocked
    }

    /// Is `link` blocked?
    #[inline]
    pub fn is_blocked(&self, link: Link) -> bool {
        self.blocked[link.flat_index(self.size)]
    }

    /// Is `link` free?
    #[inline]
    pub fn is_free(&self, link: Link) -> bool {
        !self.is_blocked(link)
    }

    /// Blocks a switch of stage `stage` (`1..=n`) by blocking all three of
    /// its input links at stage `stage - 1`, per the paper's transformation
    /// of switch blockages into link blockages.
    ///
    /// # Panics
    ///
    /// Panics if `stage == 0` (a stage-0 switch is a network input; remove
    /// the source instead) or `stage > n`.
    pub fn block_switch(&mut self, stage: usize, switch: usize) {
        assert!(
            (1..=self.size.stages()).contains(&stage),
            "switch blockage stage must be in 1..={}, got {stage}",
            self.size.stages()
        );
        let in_stage = stage - 1;
        for kind in LinkKind::ALL {
            let from = self.size.sub(switch, kind.delta(self.size, in_stage));
            self.block(Link::new(in_stage, from, kind));
        }
    }

    /// Number of blocked links.
    pub fn blocked_count(&self) -> usize {
        self.count
    }

    /// Are there no blockages at all?
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Iterator over all blocked links.
    pub fn blocked_links(&self) -> Vec<Link> {
        let mut result = Vec::with_capacity(self.count);
        for stage in self.size.stage_indices() {
            for from in self.size.switches() {
                for kind in LinkKind::ALL {
                    let link = Link::new(stage, from, kind);
                    if self.is_blocked(link) {
                        result.push(link);
                    }
                }
            }
        }
        result
    }

    /// The first (lowest-stage) blocked link on `path`, if any.
    ///
    /// This is the scan in step 1 of the paper's Algorithm REROUTE: "let `i`
    /// be the smallest stage number such that there exists a blockage at
    /// stage `i` on path `P`".
    pub fn first_blockage_on(&self, path: &Path) -> Option<Link> {
        path.links(self.size)
            .into_iter()
            .find(|&l| self.is_blocked(l))
    }

    /// Does `path` avoid every blocked link?
    pub fn path_is_free(&self, path: &Path) -> bool {
        self.first_blockage_on(path).is_none()
    }

    /// Classifies the blockage situation for a path that wants to leave
    /// switch `link.from` at stage `link.stage` through `link`
    /// (paper Section 3 taxonomy; see [`OutputBlockage`]).
    pub fn classify(&self, link: Link) -> OutputBlockage {
        if self.is_free(link) {
            return OutputBlockage::Free;
        }
        match link.kind {
            LinkKind::Straight => OutputBlockage::Straight,
            _ => {
                if self.is_blocked(link.opposite()) {
                    OutputBlockage::DoubleNonstraight
                } else {
                    OutputBlockage::Nonstraight
                }
            }
        }
    }

    /// Removes all blockages.
    pub fn clear(&mut self) {
        self.blocked.fill(false);
        self.count = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iadm_topology::Path;

    fn size8() -> Size {
        Size::new(8).unwrap()
    }

    #[test]
    fn block_unblock_round_trip() {
        let mut m = BlockageMap::new(size8());
        let l = Link::plus(1, 2);
        assert!(m.is_free(l));
        assert!(m.block(l));
        assert!(!m.block(l), "double-block reports already blocked");
        assert!(m.is_blocked(l));
        assert_eq!(m.blocked_count(), 1);
        assert!(m.unblock(l));
        assert!(!m.unblock(l));
        assert!(m.is_empty());
    }

    #[test]
    fn last_stage_links_block_independently() {
        let mut m = BlockageMap::new(size8());
        m.block(Link::plus(2, 0));
        assert!(m.is_blocked(Link::plus(2, 0)));
        assert!(
            m.is_free(Link::minus(2, 0)),
            "±2^{{n-1}} links are distinct"
        );
    }

    #[test]
    fn switch_blockage_blocks_all_inputs() {
        let mut m = BlockageMap::new(size8());
        m.block_switch(1, 0);
        // Inputs of 0 ∈ S1: straight from 0, plus from 7 (7+1=0), minus from 1.
        assert!(m.is_blocked(Link::straight(0, 0)));
        assert!(m.is_blocked(Link::plus(0, 7)));
        assert!(m.is_blocked(Link::minus(0, 1)));
        assert_eq!(m.blocked_count(), 3);
    }

    #[test]
    #[should_panic]
    fn switch_blockage_rejects_stage_zero() {
        BlockageMap::new(size8()).block_switch(0, 0);
    }

    #[test]
    fn first_blockage_scans_in_stage_order() {
        let mut m = BlockageMap::new(size8());
        let path = Path::new(1, vec![LinkKind::Plus, LinkKind::Plus, LinkKind::Plus]);
        // Path links: (0,1,+), (1,2,+), (2,4,+)
        m.block(Link::plus(2, 4));
        m.block(Link::plus(1, 2));
        assert_eq!(m.first_blockage_on(&path), Some(Link::plus(1, 2)));
        assert!(!m.path_is_free(&path));
        m.unblock(Link::plus(1, 2));
        assert_eq!(m.first_blockage_on(&path), Some(Link::plus(2, 4)));
        m.unblock(Link::plus(2, 4));
        assert!(m.path_is_free(&path));
    }

    #[test]
    fn classify_matches_paper_taxonomy() {
        let mut m = BlockageMap::new(size8());
        let plus = Link::plus(1, 2);
        let minus = Link::minus(1, 2);
        let straight = Link::straight(1, 2);

        assert_eq!(m.classify(plus), OutputBlockage::Free);
        m.block(plus);
        assert_eq!(m.classify(plus), OutputBlockage::Nonstraight);
        m.block(minus);
        assert_eq!(m.classify(plus), OutputBlockage::DoubleNonstraight);
        assert_eq!(m.classify(minus), OutputBlockage::DoubleNonstraight);
        m.block(straight);
        assert_eq!(m.classify(straight), OutputBlockage::Straight);
    }

    #[test]
    fn blocked_links_reports_everything_once() {
        let mut m = BlockageMap::new(size8());
        let links = [Link::plus(0, 0), Link::minus(2, 5), Link::straight(1, 3)];
        for l in links {
            m.block(l);
        }
        let mut reported = m.blocked_links();
        reported.sort();
        let mut expected = links.to_vec();
        expected.sort();
        assert_eq!(reported, expected);
    }

    #[test]
    fn link_list_round_trip() {
        // A map is fully described by its size and blocked-link list, so
        // any serializer that records those round-trips exactly.
        let mut m = BlockageMap::new(size8());
        m.block(Link::plus(0, 3));
        m.block(Link::straight(2, 7));
        let back = BlockageMap::from_links(m.size(), m.blocked_links());
        assert_eq!(m, back);
    }
}
