//! Blockage scenario generators for experiments.
//!
//! These produce [`BlockageMap`]s for the fault-tolerance and universal-
//! rerouting experiments (DESIGN.md experiments E3 and E6): uniformly random
//! link faults, per-link failure probabilities, and kind-restricted faults
//! (the paper's SSDT scheme only evades nonstraight blockages, so comparing
//! schemes requires controlling which kinds fail).

use crate::timeline::{FaultEvent, FaultTimeline};
use crate::BlockageMap;
use iadm_rng::{Rng, SliceRandom};
use iadm_topology::{Link, LinkKind, Size};

/// Which link kinds a scenario is allowed to block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KindFilter {
    /// Any link may be blocked.
    Any,
    /// Only nonstraight (`±2^i`) links may be blocked.
    NonstraightOnly,
    /// Only straight links may be blocked.
    StraightOnly,
}

impl KindFilter {
    /// Does this filter admit `kind`?
    pub fn admits(self, kind: LinkKind) -> bool {
        match self {
            KindFilter::Any => true,
            KindFilter::NonstraightOnly => kind.is_nonstraight(),
            KindFilter::StraightOnly => kind == LinkKind::Straight,
        }
    }
}

/// All links of an IADM network of `size` admitted by `filter`.
pub fn candidate_links(size: Size, filter: KindFilter) -> Vec<Link> {
    let mut links = Vec::new();
    for stage in size.stage_indices() {
        for from in size.switches() {
            for kind in LinkKind::ALL {
                if filter.admits(kind) {
                    links.push(Link::new(stage, from, kind));
                }
            }
        }
    }
    links
}

/// Blocks exactly `count` distinct links chosen uniformly at random among
/// those admitted by `filter`.
///
/// # Panics
///
/// Panics if `count` exceeds the number of admissible links.
pub fn random_faults<R: Rng>(
    rng: &mut R,
    size: Size,
    count: usize,
    filter: KindFilter,
) -> BlockageMap {
    let mut links = candidate_links(size, filter);
    assert!(
        count <= links.len(),
        "requested {count} faults but only {} candidate links",
        links.len()
    );
    links.shuffle(rng);
    BlockageMap::from_links(size, links.into_iter().take(count))
}

/// Blocks each admissible link independently with probability `p`.
///
/// # Panics
///
/// Panics unless `0.0 <= p <= 1.0`.
pub fn bernoulli_faults<R: Rng>(
    rng: &mut R,
    size: Size,
    p: f64,
    filter: KindFilter,
) -> BlockageMap {
    assert!((0.0..=1.0).contains(&p), "probability {p} out of range");
    let links = candidate_links(size, filter)
        .into_iter()
        .filter(|_| rng.gen_bool(p));
    BlockageMap::from_links(size, links)
}

/// Blocks both nonstraight output links of switch `switch` at `stage` —
/// the paper's *double nonstraight link blockage* (Theorem 3.4 scenario).
pub fn double_nonstraight(size: Size, stage: usize, switch: usize) -> BlockageMap {
    BlockageMap::from_links(
        size,
        [Link::minus(stage, switch), Link::plus(stage, switch)],
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use iadm_rng::StdRng;

    fn size8() -> Size {
        Size::new(8).unwrap()
    }

    #[test]
    fn candidate_counts_match_topology() {
        let s = size8();
        assert_eq!(candidate_links(s, KindFilter::Any).len(), 3 * 8 * 3);
        assert_eq!(
            candidate_links(s, KindFilter::NonstraightOnly).len(),
            2 * 8 * 3
        );
        assert_eq!(candidate_links(s, KindFilter::StraightOnly).len(), 8 * 3);
    }

    #[test]
    fn random_faults_blocks_exact_count() {
        let mut rng = StdRng::seed_from_u64(7);
        for count in [0usize, 1, 5, 24] {
            let m = random_faults(&mut rng, size8(), count, KindFilter::Any);
            assert_eq!(m.blocked_count(), count);
        }
    }

    #[test]
    fn nonstraight_filter_never_blocks_straight() {
        let mut rng = StdRng::seed_from_u64(11);
        let m = random_faults(&mut rng, size8(), 20, KindFilter::NonstraightOnly);
        assert!(m.blocked_links().iter().all(|l| l.kind.is_nonstraight()));
    }

    #[test]
    fn bernoulli_extremes() {
        let mut rng = StdRng::seed_from_u64(3);
        let none = bernoulli_faults(&mut rng, size8(), 0.0, KindFilter::Any);
        assert!(none.is_empty());
        let all = bernoulli_faults(&mut rng, size8(), 1.0, KindFilter::Any);
        assert_eq!(all.blocked_count(), 3 * 8 * 3);
    }

    #[test]
    fn double_nonstraight_blocks_exactly_two() {
        let m = double_nonstraight(size8(), 2, 4);
        assert_eq!(m.blocked_count(), 2);
        assert!(m.is_blocked(Link::plus(2, 4)));
        assert!(m.is_blocked(Link::minus(2, 4)));
        assert!(m.is_free(Link::straight(2, 4)));
    }

    #[test]
    fn seeded_generation_is_deterministic() {
        let a = random_faults(&mut StdRng::seed_from_u64(42), size8(), 10, KindFilter::Any);
        let b = random_faults(&mut StdRng::seed_from_u64(42), size8(), 10, KindFilter::Any);
        assert_eq!(a, b);
    }
}

/// Blocks every nonstraight link of the given `stage` — a stage-wide burst
/// (e.g. a shared driver failure), the worst case for SSDT since every
/// switch of the stage loses both spares at once.
pub fn stage_nonstraight_burst(size: Size, stage: usize) -> BlockageMap {
    assert!(stage < size.stages(), "stage {stage} out of range");
    BlockageMap::from_links(
        size,
        size.switches()
            .flat_map(|j| [Link::minus(stage, j), Link::plus(stage, j)]),
    )
}

/// Blocks all three output links of a contiguous band of switches at one
/// stage — a localized burst (e.g. a failed board holding several
/// switches).
pub fn switch_band_burst(size: Size, stage: usize, first: usize, count: usize) -> BlockageMap {
    assert!(stage < size.stages(), "stage {stage} out of range");
    BlockageMap::from_links(
        size,
        (0..count).flat_map(move |off| {
            let j = size.add(first, off);
            LinkKind::ALL.map(move |kind| Link::new(stage, j, kind))
        }),
    )
}

/// A declarative fault scenario: a *recipe* for a [`BlockageMap`] that can
/// be named in a sweep spec, expanded per campaign run, and labeled in
/// result tables. Deterministic scenarios ignore the seed; randomized ones
/// (`RandomLinks`, `Bernoulli`) realize from the seed the campaign engine
/// derives for the run, so the same spec + campaign seed always yields the
/// same faults regardless of worker scheduling.
#[derive(Debug, Clone, PartialEq)]
pub enum ScenarioSpec {
    /// No faults — the healthy-network baseline.
    None,
    /// One specific faulty link.
    SingleLink(Link),
    /// `count` distinct uniformly random links admitted by `filter`.
    RandomLinks {
        /// Number of faulty links.
        count: usize,
        /// Which link kinds may fail.
        filter: KindFilter,
    },
    /// Each admissible link fails independently with probability `p`.
    Bernoulli {
        /// Per-link failure probability.
        p: f64,
        /// Which link kinds may fail.
        filter: KindFilter,
    },
    /// Both nonstraight output links of one switch (Theorem 3.4 scenario).
    DoubleNonstraight {
        /// Stage of the affected switch.
        stage: usize,
        /// Affected switch.
        switch: usize,
    },
    /// Every nonstraight link of one stage (shared-driver burst).
    StageNonstraightBurst {
        /// Affected stage.
        stage: usize,
    },
    /// All outputs of a contiguous switch band at one stage (board burst).
    SwitchBandBurst {
        /// Affected stage.
        stage: usize,
        /// First switch of the band.
        first: usize,
        /// Band width in switches (wraps modulo N).
        count: usize,
    },
    /// Transient churn: every link alternates exponential up/down holding
    /// times with the given means (see [`FaultTimeline::mtbf`]). The
    /// *static* realization is the fault-free map — all failures arrive
    /// mid-run via [`ScenarioSpec::timeline`].
    Mtbf {
        /// Mean cycles between failures (per link, while up).
        mtbf: u64,
        /// Mean cycles to repair (per link, while down).
        mttr: u64,
    },
    /// Deterministic burst outage: `links` uniformly random links (any
    /// kind, chosen from the run's timeline seed) all fail at cycle
    /// `down` and are all repaired at cycle `up`, with no churn before
    /// or after — the repair-recovery scenario. MTTR sweeps hold the
    /// burst fixed and vary `up - down`. Like `Mtbf`, the *static*
    /// realization is the fault-free map; the burst arrives mid-run via
    /// [`ScenarioSpec::timeline`].
    Outage {
        /// Number of links in the burst.
        links: usize,
        /// Cycle at which every burst link fails.
        down: u64,
        /// Cycle at which every burst link is repaired.
        up: u64,
    },
}

impl ScenarioSpec {
    /// A short stable label for tables and JSON artifacts.
    pub fn label(&self) -> String {
        fn filter_tag(f: KindFilter) -> &'static str {
            match f {
                KindFilter::Any => "any",
                KindFilter::NonstraightOnly => "nonstraight",
                KindFilter::StraightOnly => "straight",
            }
        }
        match self {
            ScenarioSpec::None => "none".into(),
            ScenarioSpec::SingleLink(link) => format!("link:{link}"),
            ScenarioSpec::RandomLinks { count, filter } => {
                format!("rand:{count}:{}", filter_tag(*filter))
            }
            ScenarioSpec::Bernoulli { p, filter } => {
                format!("bernoulli:{p}:{}", filter_tag(*filter))
            }
            ScenarioSpec::DoubleNonstraight { stage, switch } => {
                format!("double:S{stage}:{switch}")
            }
            ScenarioSpec::StageNonstraightBurst { stage } => format!("stageburst:S{stage}"),
            ScenarioSpec::SwitchBandBurst {
                stage,
                first,
                count,
            } => format!("band:S{stage}:{first}x{count}"),
            ScenarioSpec::Mtbf { mtbf, mttr } => format!("mtbf:{mtbf}:{mttr}"),
            ScenarioSpec::Outage { links, down, up } => format!("outage:{links}:{down}:{up}"),
        }
    }

    /// Does [`ScenarioSpec::realize`] consume the seed? Randomized
    /// recipes (`RandomLinks`, `Bernoulli`) realize a different map per
    /// seed; every other recipe — including `Mtbf`, whose *static* map is
    /// always the healthy network — realizes identically for any seed.
    /// Campaign engines use this to decide whether runs can share one
    /// realized `BlockageMap` + route table: seed-independent recipes
    /// share per `(size, label)` key, seed-dependent ones cannot.
    pub fn realization_is_seeded(&self) -> bool {
        matches!(
            self,
            ScenarioSpec::RandomLinks { .. } | ScenarioSpec::Bernoulli { .. }
        )
    }

    /// Expands the recipe into a concrete [`BlockageMap`] for `size`.
    /// `seed` feeds only the randomized variants.
    ///
    /// # Panics
    ///
    /// Panics if the recipe is out of range for `size` (same contract as
    /// the underlying generators).
    pub fn realize(&self, size: Size, seed: u64) -> BlockageMap {
        use iadm_rng::StdRng;
        match self {
            ScenarioSpec::None => BlockageMap::new(size),
            ScenarioSpec::SingleLink(link) => BlockageMap::from_links(size, [*link]),
            ScenarioSpec::RandomLinks { count, filter } => {
                random_faults(&mut StdRng::seed_from_u64(seed), size, *count, *filter)
            }
            ScenarioSpec::Bernoulli { p, filter } => {
                bernoulli_faults(&mut StdRng::seed_from_u64(seed), size, *p, *filter)
            }
            ScenarioSpec::DoubleNonstraight { stage, switch } => {
                double_nonstraight(size, *stage, *switch)
            }
            ScenarioSpec::StageNonstraightBurst { stage } => stage_nonstraight_burst(size, *stage),
            ScenarioSpec::SwitchBandBurst {
                stage,
                first,
                count,
            } => switch_band_burst(size, *stage, *first, *count),
            // Transient scenarios start from the healthy network; their
            // faults arrive via [`ScenarioSpec::timeline`].
            ScenarioSpec::Mtbf { .. } | ScenarioSpec::Outage { .. } => BlockageMap::new(size),
        }
    }

    /// Expands the recipe's *dynamic* part: the mid-run fail/repair
    /// schedule over `horizon` cycles. Static scenarios return the empty
    /// timeline, so simulators can unconditionally consume it.
    pub fn timeline(&self, size: Size, seed: u64, horizon: u64) -> FaultTimeline {
        match self {
            ScenarioSpec::Mtbf { mtbf, mttr } => {
                FaultTimeline::mtbf(size, seed, *mtbf, *mttr, horizon)
            }
            ScenarioSpec::Outage { links, down, up } => {
                use iadm_rng::StdRng;
                let burst = random_faults(
                    &mut StdRng::seed_from_u64(seed),
                    size,
                    *links,
                    KindFilter::Any,
                );
                let events = burst.blocked_links().into_iter().flat_map(|link| {
                    [
                        FaultEvent {
                            cycle: *down,
                            link,
                            up: false,
                        },
                        FaultEvent {
                            cycle: *up,
                            link,
                            up: true,
                        },
                    ]
                });
                FaultTimeline::from_events(size, events)
            }
            _ => FaultTimeline::empty(size),
        }
    }
}

/// Every single-link fault scenario admitted by `filter` — the exhaustive
/// axis campaigns sweep to locate the worst-case link (one
/// [`ScenarioSpec::SingleLink`] per candidate link, in stage/switch/kind
/// order).
pub fn single_link_scenarios(size: Size, filter: KindFilter) -> Vec<ScenarioSpec> {
    candidate_links(size, filter)
        .into_iter()
        .map(ScenarioSpec::SingleLink)
        .collect()
}

#[cfg(test)]
mod spec_tests {
    use super::*;
    use iadm_rng::StdRng;

    fn size8() -> Size {
        Size::new(8).unwrap()
    }

    #[test]
    fn labels_are_distinct_and_stable() {
        let specs = [
            ScenarioSpec::None,
            ScenarioSpec::SingleLink(Link::plus(1, 2)),
            ScenarioSpec::RandomLinks {
                count: 3,
                filter: KindFilter::Any,
            },
            ScenarioSpec::Bernoulli {
                p: 0.1,
                filter: KindFilter::NonstraightOnly,
            },
            ScenarioSpec::DoubleNonstraight {
                stage: 1,
                switch: 4,
            },
            ScenarioSpec::StageNonstraightBurst { stage: 2 },
            ScenarioSpec::SwitchBandBurst {
                stage: 0,
                first: 6,
                count: 3,
            },
            ScenarioSpec::Mtbf {
                mtbf: 1000,
                mttr: 200,
            },
            ScenarioSpec::Outage {
                links: 4,
                down: 100,
                up: 300,
            },
        ];
        let labels: Vec<String> = specs.iter().map(ScenarioSpec::label).collect();
        let mut unique = labels.clone();
        unique.sort();
        unique.dedup();
        assert_eq!(unique.len(), labels.len(), "labels collide: {labels:?}");
        assert_eq!(labels[0], "none");
    }

    #[test]
    fn realize_matches_the_underlying_generators() {
        let size = size8();
        assert!(ScenarioSpec::None.realize(size, 1).is_empty());
        assert_eq!(
            ScenarioSpec::DoubleNonstraight {
                stage: 2,
                switch: 4
            }
            .realize(size, 1),
            double_nonstraight(size, 2, 4)
        );
        assert_eq!(
            ScenarioSpec::RandomLinks {
                count: 5,
                filter: KindFilter::Any
            }
            .realize(size, 99),
            random_faults(&mut StdRng::seed_from_u64(99), size, 5, KindFilter::Any)
        );
        // Deterministic per seed, different across seeds.
        let spec = ScenarioSpec::RandomLinks {
            count: 5,
            filter: KindFilter::Any,
        };
        assert_eq!(spec.realize(size, 7), spec.realize(size, 7));
        assert_ne!(spec.realize(size, 7), spec.realize(size, 8));
    }

    #[test]
    fn mtbf_realizes_healthy_but_times_out_links() {
        let size = size8();
        let spec = ScenarioSpec::Mtbf {
            mtbf: 1000,
            mttr: 200,
        };
        assert_eq!(spec.label(), "mtbf:1000:200");
        assert!(spec.realize(size, 5).is_empty(), "static part is healthy");
        let tl = spec.timeline(size, 5, 4000);
        assert!(!tl.is_empty(), "4000 cycles at MTBF 1000 must churn");
        assert_eq!(tl, spec.timeline(size, 5, 4000), "deterministic");
        // Static scenarios have no dynamic part.
        assert!(ScenarioSpec::None.timeline(size, 5, 4000).is_empty());
        assert!(ScenarioSpec::StageNonstraightBurst { stage: 1 }
            .timeline(size, 5, 4000)
            .is_empty());
    }

    #[test]
    fn outage_realizes_healthy_and_schedules_one_burst_and_one_repair() {
        let size = size8();
        let spec = ScenarioSpec::Outage {
            links: 5,
            down: 100,
            up: 300,
        };
        assert_eq!(spec.label(), "outage:5:100:300");
        assert!(spec.realize(size, 9).is_empty(), "static part is healthy");
        let tl = spec.timeline(size, 9, 4000);
        assert_eq!(tl, spec.timeline(size, 9, 4000), "deterministic");
        let events = tl.events();
        assert_eq!(events.len(), 2 * 5, "one failure + one repair per link");
        let downs: Vec<_> = events.iter().filter(|e| !e.up).collect();
        let ups: Vec<_> = events.iter().filter(|e| e.up).collect();
        assert_eq!(downs.len(), 5);
        assert!(downs.iter().all(|e| e.cycle == 100));
        assert!(ups.iter().all(|e| e.cycle == 300));
        // Every failed link is repaired, and the burst links are distinct.
        let mut failed: Vec<_> = downs.iter().map(|e| e.link).collect();
        let mut repaired: Vec<_> = ups.iter().map(|e| e.link).collect();
        failed.sort_by_key(|l| l.flat_index(size));
        repaired.sort_by_key(|l| l.flat_index(size));
        failed.dedup();
        assert_eq!(failed.len(), 5);
        assert_eq!(failed, repaired);
        // A different timeline seed picks a different burst.
        assert_ne!(tl, spec.timeline(size, 10, 4000));
    }

    #[test]
    fn seed_independence_flag_matches_realize_behavior() {
        // The sharing contract: every recipe reporting an unseeded
        // realization must produce identical maps under wildly different
        // seeds (so a campaign may realize it once and share the result),
        // and the seeded ones must actually use the seed.
        let size = size8();
        let unseeded = [
            ScenarioSpec::None,
            ScenarioSpec::SingleLink(Link::plus(1, 2)),
            ScenarioSpec::DoubleNonstraight {
                stage: 1,
                switch: 4,
            },
            ScenarioSpec::StageNonstraightBurst { stage: 2 },
            ScenarioSpec::SwitchBandBurst {
                stage: 0,
                first: 6,
                count: 3,
            },
            ScenarioSpec::Mtbf { mtbf: 50, mttr: 20 },
            ScenarioSpec::Outage {
                links: 4,
                down: 10,
                up: 50,
            },
        ];
        for spec in &unseeded {
            assert!(!spec.realization_is_seeded(), "{}", spec.label());
            assert_eq!(spec.realize(size, 1), spec.realize(size, 0xDEAD_BEEF));
        }
        let seeded = [
            ScenarioSpec::RandomLinks {
                count: 4,
                filter: KindFilter::Any,
            },
            ScenarioSpec::Bernoulli {
                p: 0.5,
                filter: KindFilter::Any,
            },
        ];
        for spec in &seeded {
            assert!(spec.realization_is_seeded(), "{}", spec.label());
            assert_ne!(spec.realize(size, 1), spec.realize(size, 0xDEAD_BEEF));
        }
    }

    #[test]
    fn single_link_census_is_exhaustive() {
        let all = single_link_scenarios(size8(), KindFilter::Any);
        assert_eq!(all.len(), 3 * 8 * 3);
        let straight = single_link_scenarios(size8(), KindFilter::StraightOnly);
        assert_eq!(straight.len(), 8 * 3);
        for spec in &straight {
            let map = spec.realize(size8(), 0);
            assert_eq!(map.blocked_count(), 1);
        }
    }
}

#[cfg(test)]
mod burst_tests {
    use super::*;

    #[test]
    fn stage_burst_blocks_exactly_the_nonstraight_links() {
        let size = Size::new(8).unwrap();
        let m = stage_nonstraight_burst(size, 1);
        assert_eq!(m.blocked_count(), 2 * 8);
        for j in size.switches() {
            assert!(m.is_blocked(Link::plus(1, j)));
            assert!(m.is_blocked(Link::minus(1, j)));
            assert!(m.is_free(Link::straight(1, j)));
        }
    }

    #[test]
    fn stage_burst_reduces_iadm_to_a_straight_stage() {
        // With a full nonstraight burst at stage i, only pairs whose
        // distance has bit i compatible with straight-only crossing remain
        // routable; in particular every (s, s) pair still works.
        let size = Size::new(8).unwrap();
        let m = stage_nonstraight_burst(size, 0);
        // Distance with odd parity requires a nonstraight at stage 0:
        // all such pairs are cut.
        use iadm_topology::Path;
        for s in size.switches() {
            let p = Path::all_straight(size, s);
            assert!(m.path_is_free(&p));
        }
    }

    #[test]
    fn band_burst_wraps_and_counts() {
        let size = Size::new(8).unwrap();
        let m = switch_band_burst(size, 2, 6, 3); // switches 6, 7, 0
        assert_eq!(m.blocked_count(), 9);
        for j in [6usize, 7, 0] {
            for kind in LinkKind::ALL {
                assert!(m.is_blocked(Link::new(2, j, kind)));
            }
        }
        assert!(m.is_free(Link::straight(2, 1)));
    }
}
