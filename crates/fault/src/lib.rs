//! Blockage (fault/busy-link) modeling for the IADM network.
//!
//! The paper distinguishes four kinds of blockage (Section 3):
//!
//! * a **nonstraight link blockage** — a `±2^i` link on the routing path is
//!   faulty or busy;
//! * a **straight link blockage** — a straight link on the path is faulty or
//!   busy;
//! * a **double nonstraight link blockage** — both nonstraight output links
//!   of a switch on the path are faulty or busy;
//! * a **switch blockage** — the switch itself is faulty or busy, which "has
//!   the same effect as blocking all of the switch's input links and can be
//!   transformed into a link blockage problem accordingly".
//!
//! The central type is [`BlockageMap`], the paper's "global map of
//! blockages" maintained by the network controller and consulted by message
//! senders when computing rerouting tags. Scenario generators for
//! experiments live in [`scenario`].
//!
//! # Example
//!
//! ```
//! use iadm_fault::BlockageMap;
//! use iadm_topology::{Link, Size};
//!
//! # fn main() -> Result<(), iadm_topology::SizeError> {
//! let mut map = BlockageMap::new(Size::new(8)?);
//! map.block(Link::minus(0, 1)); // Figure 7: link (1 ∈ S0, 0 ∈ S1) blocked
//! assert!(map.is_blocked(Link::minus(0, 1)));
//! assert!(!map.is_blocked(Link::plus(0, 1)));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod map;
pub mod scenario;
pub mod timeline;

pub use map::{BlockageMap, OutputBlockage};
pub use timeline::{FaultEvent, FaultTimeline};
