//! Transient-fault schedules: deterministic per-link fail/repair event
//! timelines the simulator applies *between cycles*.
//!
//! The paper's blockage model is static — the sender's global map and the
//! rerouting theorems (3.2–3.4) are all stated against a fixed set of
//! blocked links. A packet-switching deployment, which is exactly the
//! environment Section 4 motivates, sees links *fail and come back*:
//! transceivers reset, boards are reseated, cables are replaced. A
//! [`FaultTimeline`] captures that regime while keeping every run
//! byte-reproducible: it is a plain sorted list of [`FaultEvent`]s fixed
//! before the simulation starts, generated either from an explicit event
//! list or from per-link MTBF/MTTR holding times drawn from the
//! workspace's seeded splitmix64/xoshiro stream discipline
//! ([`FaultTimeline::mtbf`]).
//!
//! The timeline itself is pure data; the simulator owns the application
//! semantics (patching its routing LUT, versioning sender tag caches,
//! stalling buffers on downed links — see `iadm-sim`).

use crate::BlockageMap;
use iadm_rng::{mix, Rng, StdRng};
use iadm_topology::{Link, LinkKind, Size};

/// One scheduled link-state transition: at the start of `cycle`, `link`
/// goes down (`up == false`) or comes back (`up == true`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEvent {
    /// Cycle *before* which the transition takes effect (an event at
    /// cycle `c` is visible to every routing decision of cycle `c`).
    pub cycle: u64,
    /// The affected link.
    pub link: Link,
    /// `false` = the link fails; `true` = the link is repaired.
    pub up: bool,
}

impl FaultEvent {
    /// Is this a failure (the link goes down)? In wormhole mode a failure
    /// of a reserved link additionally tears down every worm holding one
    /// of its lanes.
    pub fn is_failure(&self) -> bool {
        !self.up
    }

    /// Is this a repair (the link comes back up)?
    pub fn is_repair(&self) -> bool {
        self.up
    }
}

/// A deterministic schedule of link fail/repair events, sorted by
/// `(cycle, link, repair-after-fail)` so application order never depends
/// on construction order. The canonical sort also makes two timelines
/// comparable structurally.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultTimeline {
    size: Size,
    events: Vec<FaultEvent>,
}

impl FaultTimeline {
    /// The empty timeline: no mid-run fault dynamics. A simulation run
    /// with an empty timeline is byte-identical to the static-blockage
    /// path (enforced by `crates/sim/tests/parity.rs`).
    pub fn empty(size: Size) -> Self {
        FaultTimeline {
            size,
            events: Vec::new(),
        }
    }

    /// A timeline from an explicit event list. Events are canonically
    /// sorted; same-cycle events on one link apply fail-before-repair so
    /// a `(fail, repair)` pair at the same cycle nets to "up".
    ///
    /// # Panics
    ///
    /// Panics if any event's link is out of range for `size`.
    pub fn from_events<I: IntoIterator<Item = FaultEvent>>(size: Size, events: I) -> Self {
        let mut events: Vec<FaultEvent> = events.into_iter().collect();
        for event in &events {
            assert!(
                event.link.stage < size.stages() && event.link.from < size.n(),
                "event link {} out of range for N={}",
                event.link,
                size.n()
            );
        }
        events.sort_by_key(|e| (e.cycle, e.link.flat_index(size), e.up));
        FaultTimeline { size, events }
    }

    /// A churn timeline: every link alternates up/down holding times drawn
    /// from exponential distributions with means `mtbf` (up) and `mttr`
    /// (down), truncated at `horizon` cycles. Each link's schedule comes
    /// from its own generator seeded `mix(seed, flat_index)` — the
    /// workspace's per-stream splitmix64 discipline — so the timeline is a
    /// pure function of `(size, seed, mtbf, mttr, horizon)` and adding or
    /// removing links never perturbs another link's draws.
    ///
    /// # Panics
    ///
    /// Panics if `mtbf` or `mttr` is zero.
    pub fn mtbf(size: Size, seed: u64, mtbf: u64, mttr: u64, horizon: u64) -> Self {
        assert!(mtbf > 0, "mean time between failures must be positive");
        assert!(mttr > 0, "mean time to repair must be positive");
        let mut events = Vec::new();
        for stage in size.stage_indices() {
            for from in size.switches() {
                for kind in LinkKind::ALL {
                    let link = Link::new(stage, from, kind);
                    let stream = link.flat_index(size) as u64;
                    let mut rng = StdRng::seed_from_u64(mix(seed, stream));
                    let mut t = holding_time(&mut rng, mtbf);
                    while t < horizon {
                        events.push(FaultEvent {
                            cycle: t,
                            link,
                            up: false,
                        });
                        let back = t + holding_time(&mut rng, mttr);
                        if back >= horizon {
                            // Stays down past the end of the run.
                            break;
                        }
                        events.push(FaultEvent {
                            cycle: back,
                            link,
                            up: true,
                        });
                        t = back + holding_time(&mut rng, mtbf);
                    }
                }
            }
        }
        Self::from_events(size, events)
    }

    /// The network size this timeline is for.
    pub fn size(&self) -> Size {
        self.size
    }

    /// The canonical (sorted) event list.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Number of scheduled events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Is the timeline event-free (i.e. the static-fault regime)?
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Replays the whole timeline onto `map` (final state, ignoring
    /// cycles) — a cheap oracle for tests: the simulator's incremental
    /// application must land on the same map.
    pub fn final_map(&self, initial: &BlockageMap) -> BlockageMap {
        let mut map = initial.clone();
        for event in &self.events {
            if event.up {
                map.unblock(event.link);
            } else {
                map.block(event.link);
            }
        }
        map
    }
}

/// One exponential holding time with the given `mean`, floored to a full
/// cycle so every state persists at least one cycle.
fn holding_time<R: Rng>(rng: &mut R, mean: u64) -> u64 {
    // gen_f64 is in [0, 1); 1 - u is in (0, 1] so ln is finite and <= 0.
    let u = rng.gen_f64();
    1 + (-(mean as f64) * (1.0 - u).ln()) as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn size8() -> Size {
        Size::new(8).unwrap()
    }

    #[test]
    fn empty_timeline_has_no_events() {
        let tl = FaultTimeline::empty(size8());
        assert!(tl.is_empty());
        assert_eq!(tl.len(), 0);
        assert_eq!(tl.size(), size8());
    }

    #[test]
    fn from_events_sorts_canonically() {
        let link_a = Link::plus(0, 1);
        let link_b = Link::minus(2, 5);
        let tl = FaultTimeline::from_events(
            size8(),
            [
                FaultEvent {
                    cycle: 9,
                    link: link_b,
                    up: true,
                },
                FaultEvent {
                    cycle: 3,
                    link: link_a,
                    up: false,
                },
                // Same cycle as the repair below: fail sorts first.
                FaultEvent {
                    cycle: 9,
                    link: link_b,
                    up: false,
                },
            ],
        );
        let cycles: Vec<(u64, bool)> = tl.events().iter().map(|e| (e.cycle, e.up)).collect();
        assert_eq!(cycles, vec![(3, false), (9, false), (9, true)]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn from_events_rejects_out_of_range_links() {
        let _ = FaultTimeline::from_events(
            size8(),
            [FaultEvent {
                cycle: 0,
                link: Link::plus(0, 99),
                up: false,
            }],
        );
    }

    #[test]
    fn mtbf_is_deterministic_per_seed_and_varies_across_seeds() {
        let a = FaultTimeline::mtbf(size8(), 7, 100, 30, 1000);
        let b = FaultTimeline::mtbf(size8(), 7, 100, 30, 1000);
        let c = FaultTimeline::mtbf(size8(), 8, 100, 30, 1000);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert!(!a.is_empty(), "1000 cycles at MTBF 100 must produce churn");
    }

    #[test]
    fn mtbf_events_respect_the_horizon_and_alternate_per_link() {
        let tl = FaultTimeline::mtbf(size8(), 42, 50, 20, 600);
        assert!(tl.events().iter().all(|e| e.cycle < 600));
        // Per link the first event is a failure and states alternate.
        for stage in size8().stage_indices() {
            for from in size8().switches() {
                for kind in LinkKind::ALL {
                    let link = Link::new(stage, from, kind);
                    let mut expect_up = false;
                    for e in tl.events().iter().filter(|e| e.link == link) {
                        assert_eq!(e.up, expect_up, "link {link} out of phase");
                        expect_up = !expect_up;
                    }
                }
            }
        }
    }

    #[test]
    fn mtbf_intensity_scales_event_count() {
        let gentle = FaultTimeline::mtbf(size8(), 3, 500, 100, 2000);
        let harsh = FaultTimeline::mtbf(size8(), 3, 50, 10, 2000);
        assert!(
            harsh.len() > gentle.len(),
            "harsh churn ({}) must out-event gentle churn ({})",
            harsh.len(),
            gentle.len()
        );
    }

    #[test]
    fn final_map_replays_the_event_list() {
        let size = size8();
        let tl = FaultTimeline::from_events(
            size,
            [
                FaultEvent {
                    cycle: 1,
                    link: Link::plus(0, 1),
                    up: false,
                },
                FaultEvent {
                    cycle: 2,
                    link: Link::minus(1, 3),
                    up: false,
                },
                FaultEvent {
                    cycle: 5,
                    link: Link::plus(0, 1),
                    up: true,
                },
            ],
        );
        let end = tl.final_map(&BlockageMap::new(size));
        assert!(end.is_free(Link::plus(0, 1)), "failed then repaired");
        assert!(end.is_blocked(Link::minus(1, 3)), "still down at the end");
        assert_eq!(end.blocked_count(), 1);
    }
}
