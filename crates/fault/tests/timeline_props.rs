//! `FaultTimeline` properties: for ANY (seed, MTBF, MTTR, horizon) the
//! generated schedule must be canonically sorted, strictly alternating
//! per link starting with a failure, and a pure function of its inputs.
//! The simulator's incremental application (and the wormhole teardown
//! path layered on it in PR 5) silently depends on every one of these —
//! e.g. a repair sorting before a same-cycle failure would resurrect a
//! link the teardown pass just killed worms on.

use iadm_check::{check, check_assert, check_assert_eq};
use iadm_fault::{FaultEvent, FaultTimeline};
use iadm_rng::Rng;
use iadm_topology::{Link, LinkKind, Size};
use std::collections::HashMap;

/// Asserts every structural invariant of a canonical timeline.
fn assert_canonical(tl: &FaultTimeline, horizon: u64) -> Result<(), String> {
    let size = tl.size();
    // Sorted by (cycle, link, fail-before-repair), with no event at or
    // past the horizon.
    for pair in tl.events().windows(2) {
        let key = |e: &FaultEvent| (e.cycle, e.link.flat_index(size), e.up);
        check_assert!(
            key(&pair[0]) <= key(&pair[1]),
            "events out of canonical order: {:?} then {:?}",
            pair[0],
            pair[1]
        );
    }
    check_assert!(tl.events().iter().all(|e| e.cycle < horizon));
    // Per link: first event is a failure, states strictly alternate, and
    // cycles strictly increase (a link cannot transition twice at once).
    let mut last: HashMap<usize, (u64, bool)> = HashMap::new();
    for e in tl.events() {
        let q = e.link.flat_index(size);
        match last.get(&q) {
            None => check_assert!(
                e.is_failure(),
                "link {} must fail before it can be repaired",
                e.link
            ),
            Some(&(cycle, up)) => {
                check_assert!(
                    e.cycle > cycle,
                    "link {} transitions twice at cycle {}",
                    e.link,
                    e.cycle
                );
                check_assert_eq!(e.up, !up, "link {} out of phase", e.link);
            }
        }
        check_assert_eq!(e.is_repair(), !e.is_failure());
        last.insert(q, (e.cycle, e.up));
    }
    Ok(())
}

check! {
    fn prop_mtbf_schedules_are_canonical_and_deterministic(g; cases = 96) {
        let size = Size::new([4, 8, 16][g.usize_in(0..=2)]).unwrap();
        let seed = g.u64_any();
        let mtbf = u64::from(g.u32_in(1..=300));
        let mttr = u64::from(g.u32_in(1..=120));
        let horizon = u64::from(g.u32_in(1..=1500));
        let tl = FaultTimeline::mtbf(size, seed, mtbf, mttr, horizon);
        assert_canonical(&tl, horizon)?;
        // A pure function of its inputs.
        check_assert_eq!(tl, FaultTimeline::mtbf(size, seed, mtbf, mttr, horizon));
    }

    fn prop_from_events_canonicalizes_any_event_soup(g; cases = 96) {
        // Throw an arbitrary unsorted pile of events (duplicates and
        // same-cycle fail/repair pairs included) at the constructor; the
        // result must sort canonically with fail-before-repair on ties.
        let size = Size::new(8).unwrap();
        let mut rng = g.rng();
        let count = g.usize_in(0..=40);
        let mut events = Vec::with_capacity(count);
        for _ in 0..count {
            events.push(FaultEvent {
                cycle: rng.gen_range(0..50) as u64,
                link: Link::new(
                    rng.gen_range(0..size.stages()),
                    rng.gen_range(0..size.n()),
                    LinkKind::ALL[rng.gen_range(0..3)],
                ),
                up: rng.gen_bool(0.5),
            });
        }
        let tl = FaultTimeline::from_events(size, events.clone());
        check_assert_eq!(tl.len(), events.len(), "canonicalization never drops events");
        let key = |e: &FaultEvent| (e.cycle, e.link.flat_index(size), e.up);
        for pair in tl.events().windows(2) {
            check_assert!(key(&pair[0]) <= key(&pair[1]));
        }
        // Same-key (cycle, link) collisions: every failure precedes every
        // repair, so a same-cycle (fail, repair) pair nets to "up".
        for pair in tl.events().windows(2) {
            if pair[0].cycle == pair[1].cycle && pair[0].link == pair[1].link {
                check_assert!(
                    !pair[0].up || pair[1].up,
                    "repair sorted before a same-cycle failure"
                );
            }
        }
        // Construction order is irrelevant.
        let mut reversed = events;
        reversed.reverse();
        check_assert_eq!(tl, FaultTimeline::from_events(size, reversed));
    }
}

#[test]
fn mtbf_seeds_decorrelate_links() {
    // Two links with identical parameters draw from per-link streams:
    // their schedules must not be copies of each other (a shared stream
    // would fail every availability statistic downstream).
    let size = Size::new(8).unwrap();
    let tl = FaultTimeline::mtbf(size, 9, 80, 30, 4000);
    let schedule = |link: Link| -> Vec<u64> {
        tl.events()
            .iter()
            .filter(|e| e.link == link)
            .map(|e| e.cycle)
            .collect()
    };
    let a = schedule(Link::plus(0, 0));
    let b = schedule(Link::plus(0, 1));
    assert!(!a.is_empty() && !b.is_empty(), "4000 cycles must churn");
    assert_ne!(a, b, "per-link streams must differ");
}
