//! Pivot-theory exactness of the d-choice candidate enumeration.
//!
//! `iadm_core::candidates::candidate_kinds` builds the set a d-choice
//! policy samples from *locally*: the static `{ΔC, ΔC̄}` pair of Lemma
//! A2.1 filtered by this stage's blockages. `oracle::routable_kinds` is
//! the exhaustive ground truth: a link is routable iff it is free *and*
//! the destination survives a tag-constrained sweep of every remaining
//! stage. These properties pin the relationship at N = 4 and 8 for every
//! `(stage, switch, tag)`:
//!
//! * when faults are confined to the current stage (the only ones a
//!   local decision can see), the two sets are **equal** — the paper's
//!   claim that pivot theory makes d-choice sampling exact, not a
//!   heuristic;
//! * under arbitrary fault maps the candidate set still **contains**
//!   every exhaustively-routable link — a local filter may be too
//!   optimistic about later stages, never too strict;
//! * fault-free, a nonstraight-bound message has exactly the two signed
//!   candidates and a straight-bound message exactly one (Theorem 3.2).
//!
//! Seed-replayable via `IADM_CHECK_SEED`.

use iadm_analysis::oracle;
use iadm_core::candidates::candidate_kinds;
use iadm_fault::scenario::{self, KindFilter};
use iadm_fault::BlockageMap;
use iadm_topology::{LinkKind, Size};

/// Sorted copy for order-insensitive set comparison.
fn sorted(mut kinds: Vec<LinkKind>) -> Vec<LinkKind> {
    kinds.sort();
    kinds
}

/// Can a packet destined to `dest` actually occupy switch `sw` at
/// `stage`? Each stage `i` fixes address bit `i` and later stages never
/// disturb it (±2^later touches bits ≥ later only), so the bits below
/// `stage` must already agree. The equality properties quantify over
/// exactly these reachable router states; for the impossible ones the
/// oracle correctly reports an empty routable set (pinned below).
fn occupancy_consistent(stage: usize, sw: usize, dest: usize) -> bool {
    let mask = (1usize << stage) - 1;
    sw & mask == dest & mask
}

iadm_check::check! {
    /// Faults at the decision stage only: local candidate set == the
    /// oracle's exhaustive routable set, everywhere.
    fn candidates_equal_oracle_under_same_stage_faults(g; cases = 40) {
        let size = Size::new(if g.bool_with(0.5) { 4 } else { 8 }).unwrap();
        let faults = g.usize_in(0..=2 * size.n());
        let full = scenario::random_faults(&mut g.rng(), size, faults, KindFilter::Any);
        for stage in size.stage_indices() {
            // Keep only this stage's blockages: the remainder is
            // fault-free, so Lemma A2.1 applies to both candidates.
            let masked = BlockageMap::from_links(
                size,
                full.blocked_links().into_iter().filter(|l| l.stage == stage),
            );
            for sw in size.switches() {
                for dest in size.switches() {
                    let exhaustive = oracle::routable_kinds(size, &masked, stage, sw, dest);
                    if !occupancy_consistent(stage, sw, dest) {
                        iadm_check::check_assert!(
                            exhaustive.is_empty(),
                            "unreachable router state routed: stage {} switch {} dest {}",
                            stage, sw, dest
                        );
                        continue;
                    }
                    let local = candidate_kinds(size, &masked, stage, sw, dest);
                    iadm_check::check_assert_eq!(
                        sorted(local.as_slice().to_vec()),
                        sorted(exhaustive),
                        "stage {} switch {} dest {}", stage, sw, dest
                    );
                }
            }
        }
    }

    /// Arbitrary fault maps: every exhaustively-routable link is a
    /// candidate (the local filter is never stricter than ground truth).
    fn candidates_contain_every_routable_kind(g; cases = 40) {
        let size = Size::new(if g.bool_with(0.5) { 4 } else { 8 }).unwrap();
        let faults = g.usize_in(0..=3 * size.n());
        let map = scenario::random_faults(&mut g.rng(), size, faults, KindFilter::Any);
        for stage in size.stage_indices() {
            for sw in size.switches() {
                for dest in size.switches() {
                    let local = candidate_kinds(size, &map, stage, sw, dest);
                    for kind in oracle::routable_kinds(size, &map, stage, sw, dest) {
                        iadm_check::check_assert!(
                            local.contains(kind),
                            "routable {:?} missing from candidates at stage {} switch {} dest {}",
                            kind, stage, sw, dest
                        );
                    }
                }
            }
        }
    }

    /// Fault-free: candidate counts restate Theorem 3.2 — one straight
    /// link when the tag bit matches the switch parity, else exactly the
    /// signed pair, and the oracle agrees bit for bit.
    fn fault_free_counts_match_theorem_3_2(g; cases = 8) {
        let size = Size::new(if g.bool_with(0.5) { 4 } else { 8 }).unwrap();
        let map = BlockageMap::new(size);
        for stage in size.stage_indices() {
            for sw in size.switches() {
                for dest in size.switches() {
                    if !occupancy_consistent(stage, sw, dest) {
                        continue;
                    }
                    let local = candidate_kinds(size, &map, stage, sw, dest);
                    let straight = local.contains(LinkKind::Straight);
                    iadm_check::check_assert_eq!(local.len(), if straight { 1 } else { 2 });
                    iadm_check::check_assert_eq!(
                        sorted(local.as_slice().to_vec()),
                        sorted(oracle::routable_kinds(size, &map, stage, sw, dest))
                    );
                }
            }
        }
    }
}
