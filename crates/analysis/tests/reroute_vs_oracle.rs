//! Experiment E3 backbone: Algorithm REROUTE must agree with the
//! exhaustive oracle on *every* blockage scenario — it finds a
//! blockage-free path iff one exists (the paper's universality claim).

use iadm_analysis::oracle;
use iadm_core::reroute::reroute;
use iadm_core::route::trace_tsdt;
use iadm_fault::scenario::{self, KindFilter};
use iadm_fault::BlockageMap;
use iadm_rng::StdRng;
use iadm_topology::{Link, LinkKind, Size};

/// Checks agreement for every (s, d) pair under the given blockages.
fn assert_agreement(size: Size, blockages: &BlockageMap, context: &str) {
    for s in size.switches() {
        for d in size.switches() {
            let oracle_says = oracle::free_path_exists(size, blockages, s, d);
            match reroute(size, blockages, s, d) {
                Ok(tag) => {
                    let path = trace_tsdt(size, s, &tag);
                    assert!(
                        blockages.path_is_free(&path),
                        "{context}: s={s} d={d}: REROUTE returned a blocked path {path}"
                    );
                    assert_eq!(path.destination(size), d, "{context}: wrong destination");
                    assert!(
                        oracle_says,
                        "{context}: s={s} d={d}: REROUTE found a path the oracle says cannot exist"
                    );
                }
                Err(err) => {
                    assert!(
                        !oracle_says,
                        "{context}: s={s} d={d}: REROUTE failed ({err}) but the oracle finds a path"
                    );
                }
            }
        }
    }
}

#[test]
fn agrees_on_every_single_link_blockage_n8() {
    let size = Size::new(8).unwrap();
    for link in scenario::candidate_links(size, KindFilter::Any) {
        let blockages = BlockageMap::from_links(size, [link]);
        assert_agreement(size, &blockages, &format!("single {link}"));
    }
}

#[test]
fn agrees_on_every_link_pair_blockage_n4() {
    // Exhaustive over all pairs of blocked links for N=4 (24 links -> 276
    // pairs, each checked for all 16 (s,d) pairs).
    let size = Size::new(4).unwrap();
    let links = scenario::candidate_links(size, KindFilter::Any);
    for (i, &a) in links.iter().enumerate() {
        for &b in &links[i + 1..] {
            let blockages = BlockageMap::from_links(size, [a, b]);
            assert_agreement(size, &blockages, &format!("pair {a} {b}"));
        }
    }
}

#[test]
fn agrees_on_every_double_nonstraight_blockage_n8() {
    let size = Size::new(8).unwrap();
    for stage in size.stage_indices() {
        for sw in size.switches() {
            let blockages = scenario::double_nonstraight(size, stage, sw);
            assert_agreement(size, &blockages, &format!("double@S{stage}:{sw}"));
        }
    }
}

#[test]
fn agrees_on_random_multi_blockages_n8() {
    let size = Size::new(8).unwrap();
    let mut rng = StdRng::seed_from_u64(0xDEAD);
    for trial in 0..400 {
        let count = 1 + (trial % 30);
        let blockages = scenario::random_faults(&mut rng, size, count, KindFilter::Any);
        assert_agreement(
            size,
            &blockages,
            &format!("random trial {trial} ({count} faults)"),
        );
    }
}

#[test]
fn agrees_on_random_multi_blockages_n16() {
    let size = Size::new(16).unwrap();
    let mut rng = StdRng::seed_from_u64(0xBEEF);
    for trial in 0..60 {
        let count = 1 + (trial % 60);
        let blockages = scenario::random_faults(&mut rng, size, count, KindFilter::Any);
        assert_agreement(
            size,
            &blockages,
            &format!("random16 trial {trial} ({count} faults)"),
        );
    }
}

#[test]
fn agrees_on_random_multi_blockages_n32_spot() {
    let size = Size::new(32).unwrap();
    let mut rng = StdRng::seed_from_u64(0xCAFE);
    for trial in 0..10 {
        let count = 20 + 10 * (trial % 5);
        let blockages = scenario::random_faults(&mut rng, size, count, KindFilter::Any);
        assert_agreement(size, &blockages, &format!("random32 trial {trial}"));
    }
}

#[test]
fn agrees_on_switch_blockages() {
    let size = Size::new(8).unwrap();
    for stage in 1..=size.stages() {
        for sw in size.switches() {
            let mut blockages = BlockageMap::new(size);
            blockages.block_switch(stage, sw);
            assert_agreement(size, &blockages, &format!("switch@S{stage}:{sw}"));
        }
    }
}

#[test]
fn agrees_on_adversarial_straight_runs() {
    // Blockages placed specifically on the straight runs of the forced
    // prefix and on all nonstraight escapes — the hardest FAIL cases.
    let size = Size::new(8).unwrap();
    for s in size.switches() {
        for d in size.switches() {
            let mut blockages = BlockageMap::new(size);
            // Block the straight link at the highest stage of the forced
            // prefix plus both escapes one stage earlier where possible.
            blockages.block(Link::new(size.stages() - 1, s, LinkKind::Straight));
            blockages.block(Link::new(size.stages() - 1, s, LinkKind::Plus));
            blockages.block(Link::new(size.stages() - 1, s, LinkKind::Minus));
            assert_agreement(size, &blockages, &format!("walled-off s={s} d={d}"));
        }
    }
}

#[test]
fn agrees_on_every_link_triple_blockage_n4() {
    // Exhaustive over all 2024 triples of blocked links for N=4, every
    // (s, d) pair — the strongest machine check of the universality claim.
    let size = Size::new(4).unwrap();
    let links = scenario::candidate_links(size, KindFilter::Any);
    for (i, &a) in links.iter().enumerate() {
        for (j, &b) in links.iter().enumerate().skip(i + 1) {
            for &c in &links[j + 1..] {
                let blockages = BlockageMap::from_links(size, [a, b, c]);
                assert_agreement(size, &blockages, &format!("triple {a} {b} {c}"));
            }
        }
    }
}

#[test]
fn agrees_on_all_nonstraight_subsets_per_stage_n4() {
    // Block every subset of the nonstraight links of a single stage
    // (2^8 = 256 subsets per stage): stresses the last-stage degeneracy
    // where +2^{n-1} and -2^{n-1} are parallel links.
    let size = Size::new(4).unwrap();
    for stage in size.stage_indices() {
        let stage_links: Vec<Link> = scenario::candidate_links(size, KindFilter::NonstraightOnly)
            .into_iter()
            .filter(|l| l.stage == stage)
            .collect();
        assert_eq!(stage_links.len(), 8);
        for mask in 0..(1usize << stage_links.len()) {
            let chosen = stage_links
                .iter()
                .enumerate()
                .filter(|(i, _)| mask & (1 << i) != 0)
                .map(|(_, &l)| l);
            let blockages = BlockageMap::from_links(size, chosen);
            assert_agreement(size, &blockages, &format!("stage{stage} mask {mask:#010b}"));
        }
    }
}
