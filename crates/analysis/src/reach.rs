//! Reachability metrics under blockages — the measurements behind the
//! fault-tolerance experiment (E6): what fraction of source/destination
//! pairs can still communicate, per routing scheme, as links fail.

use crate::oracle;
use iadm_core::reroute::reroute;
use iadm_core::ssdt;
use iadm_core::{icube_routing, NetworkState};
use iadm_fault::BlockageMap;
use iadm_topology::Size;

/// Which routing scheme a reachability measurement exercises.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scheme {
    /// Plain ICube-emulation (all state `C`, no rerouting): the zero-
    /// redundancy baseline.
    ICube,
    /// SSDT with per-switch state flips (evades single nonstraight
    /// blockages only).
    Ssdt,
    /// TSDT driven by the universal REROUTE algorithm (evades everything
    /// evadable).
    TsdtReroute,
    /// The exhaustive oracle (upper bound; identical to `TsdtReroute` if
    /// the paper's universality claim holds).
    Oracle,
}

impl Scheme {
    /// All schemes, in increasing order of rerouting power.
    pub const ALL: [Scheme; 4] = [
        Scheme::ICube,
        Scheme::Ssdt,
        Scheme::TsdtReroute,
        Scheme::Oracle,
    ];

    /// Short display label used by experiment tables.
    pub fn label(self) -> &'static str {
        match self {
            Scheme::ICube => "ICube (no rerouting)",
            Scheme::Ssdt => "SSDT",
            Scheme::TsdtReroute => "TSDT+REROUTE",
            Scheme::Oracle => "oracle (BFS)",
        }
    }

    /// Can `scheme` deliver a message from `s` to `d` under `blockages`?
    pub fn routes(self, size: Size, blockages: &BlockageMap, s: usize, d: usize) -> bool {
        match self {
            Scheme::ICube => {
                let path = icube_routing::route(size, s, d);
                blockages.path_is_free(&path)
            }
            Scheme::Ssdt => {
                let mut state = NetworkState::all_c(size);
                ssdt::route(size, blockages, &mut state, s, d).is_ok()
            }
            Scheme::TsdtReroute => reroute(size, blockages, s, d).is_ok(),
            Scheme::Oracle => oracle::free_path_exists(size, blockages, s, d),
        }
    }
}

/// The fraction of all `N²` source/destination pairs `scheme` can still
/// serve under `blockages` (1.0 = fully connected).
///
/// # Example
///
/// ```
/// use iadm_analysis::reach::{routable_fraction, Scheme};
/// use iadm_fault::BlockageMap;
/// use iadm_topology::Size;
///
/// # fn main() -> Result<(), iadm_topology::SizeError> {
/// let size = Size::new(8)?;
/// let fraction = routable_fraction(size, &BlockageMap::new(size), Scheme::Ssdt);
/// assert_eq!(fraction, 1.0); // no faults: everything routes
/// # Ok(())
/// # }
/// ```
pub fn routable_fraction(size: Size, blockages: &BlockageMap, scheme: Scheme) -> f64 {
    let n = size.n();
    let mut ok = 0usize;
    for s in 0..n {
        for d in 0..n {
            if scheme.routes(size, blockages, s, d) {
                ok += 1;
            }
        }
    }
    ok as f64 / (n * n) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use iadm_fault::scenario::{self, KindFilter};
    use iadm_rng::StdRng;
    use iadm_topology::Link;

    fn size8() -> Size {
        Size::new(8).unwrap()
    }

    #[test]
    fn unblocked_everything_fully_routable() {
        let blockages = BlockageMap::new(size8());
        for scheme in Scheme::ALL {
            assert_eq!(routable_fraction(size8(), &blockages, scheme), 1.0);
        }
    }

    #[test]
    fn scheme_power_is_monotone() {
        // ICube <= SSDT <= TSDT+REROUTE <= oracle, pair by pair.
        let size = size8();
        let mut rng = StdRng::seed_from_u64(31);
        for trial in 0..40 {
            let blockages =
                scenario::random_faults(&mut rng, size, (trial % 12) + 1, KindFilter::Any);
            for s in size.switches() {
                for d in size.switches() {
                    let icube = Scheme::ICube.routes(size, &blockages, s, d);
                    let ssdt = Scheme::Ssdt.routes(size, &blockages, s, d);
                    let tsdt = Scheme::TsdtReroute.routes(size, &blockages, s, d);
                    let oracle = Scheme::Oracle.routes(size, &blockages, s, d);
                    assert!(!icube || ssdt, "SSDT must dominate ICube (s={s},d={d})");
                    assert!(!ssdt || tsdt, "TSDT must dominate SSDT (s={s},d={d})");
                    assert!(!tsdt || oracle, "oracle must dominate TSDT (s={s},d={d})");
                }
            }
        }
    }

    #[test]
    fn single_nonstraight_fault_does_not_hurt_ssdt() {
        let size = size8();
        // Plus(1, 1) is an ICube link (switch 1 is even_1), so the no-
        // redundancy baseline loses pairs while SSDT keeps them all.
        let blockages = BlockageMap::from_links(size, [Link::plus(1, 1)]);
        assert_eq!(routable_fraction(size, &blockages, Scheme::Ssdt), 1.0);
        assert!(routable_fraction(size, &blockages, Scheme::ICube) < 1.0);
    }
}
