//! The ground-truth rerouting oracle: exhaustive search for a
//! blockage-free path.
//!
//! Where the paper's Algorithm REROUTE reasons from theorems, the oracle
//! simply searches the layered IADM graph (blocked links removed) stage by
//! stage. It is slower — O(N·n) per query versus REROUTE's near-O(n) — but
//! its verdicts are correct by construction, which makes it the reference
//! for validating REROUTE's iff-completeness claim (experiment E3).

use iadm_fault::BlockageMap;
use iadm_topology::{bit, Link, LinkKind, Path, Size};

/// Finds any blockage-free path from `source` (stage 0) to `dest`
/// (the output column) by breadth-first search over the layered IADM graph,
/// or returns `None` when no such path exists.
///
/// # Panics
///
/// Panics if `source` or `dest` is `>= N`.
///
/// # Example
///
/// ```
/// use iadm_analysis::oracle::find_free_path;
/// use iadm_fault::BlockageMap;
/// use iadm_topology::{Link, Size};
///
/// # fn main() -> Result<(), iadm_topology::SizeError> {
/// let size = Size::new(8)?;
/// let mut blockages = BlockageMap::new(size);
/// blockages.block(Link::minus(0, 1));
/// let path = find_free_path(size, &blockages, 1, 0).expect("path exists");
/// assert!(blockages.path_is_free(&path));
/// assert_eq!(path.destination(size), 0);
/// # Ok(())
/// # }
/// ```
pub fn find_free_path(
    size: Size,
    blockages: &BlockageMap,
    source: usize,
    dest: usize,
) -> Option<Path> {
    assert!(source < size.n(), "source {source} out of range for {size}");
    assert!(
        dest < size.n(),
        "destination {dest} out of range for {size}"
    );
    let n = size.n();
    let stages = size.stages();
    // reached[stage][switch]: which link kind got us there (for rebuild).
    let mut reached: Vec<Vec<Option<LinkKind>>> = vec![vec![None; n]; stages + 1];
    let mut frontier = vec![false; n];
    frontier[source] = true;
    for stage in 0..stages {
        let mut next = vec![false; n];
        let mut advanced = false;
        for (sw, _) in frontier.iter().enumerate().filter(|(_, &f)| f) {
            for kind in LinkKind::ALL {
                let link = Link::new(stage, sw, kind);
                if blockages.is_blocked(link) {
                    continue;
                }
                let to = link.target(size);
                if reached[stage + 1][to].is_none() {
                    reached[stage + 1][to] = Some(kind);
                    next[to] = true;
                    advanced = true;
                }
            }
        }
        // Keep the BFS front; several kinds can reach the same switch,
        // first writer wins (any witness path is fine).
        frontier = next;
        if !advanced {
            return None;
        }
    }
    reached[stages][dest]?;
    // Rebuild the path backwards from (stages, dest).
    let mut kinds = vec![LinkKind::Straight; stages];
    let mut sw = dest;
    for stage in (0..stages).rev() {
        let kind = reached[stage + 1][sw].expect("reached switch must have a predecessor kind");
        kinds[stage] = kind;
        sw = size.sub(sw, kind.delta(size, stage));
    }
    debug_assert_eq!(sw, source);
    let path = Path::new(source, kinds);
    debug_assert!(blockages.path_is_free(&path));
    debug_assert_eq!(path.destination(size), dest);
    Some(path)
}

/// Does any blockage-free path from `source` to `dest` exist?
pub fn free_path_exists(size: Size, blockages: &BlockageMap, source: usize, dest: usize) -> bool {
    find_free_path(size, blockages, source, dest).is_some()
}

/// The set of destinations reachable from `source` through free links,
/// as a boolean vector indexed by destination.
pub fn reachable_destinations(size: Size, blockages: &BlockageMap, source: usize) -> Vec<bool> {
    assert!(source < size.n(), "source {source} out of range for {size}");
    let n = size.n();
    let mut frontier = vec![false; n];
    frontier[source] = true;
    for stage in size.stage_indices() {
        let mut next = vec![false; n];
        for (sw, _) in frontier.iter().enumerate().filter(|(_, &f)| f) {
            for kind in LinkKind::ALL {
                let link = Link::new(stage, sw, kind);
                if blockages.is_free(link) {
                    next[link.target(size)] = true;
                }
            }
        }
        frontier = next;
    }
    frontier
}

/// The exhaustively-routable output links of switch `sw` at `stage` for a
/// message destined to `dest`: every link kind that (a) leaves the switch
/// toward a stage-`(stage+1)` switch whose destination-tag remainder still
/// reaches `dest`, and (b) is itself free.
///
/// "Still reaches" is decided by the same layered sweep as
/// [`reachable_destinations`], but restricted to the *destination-tag*
/// successors of the remaining stages: from an intermediate switch `j` at
/// stage `i`, a tag-routed message may only use a link whose target has
/// bit `i` equal to bit `i` of `dest` (Theorem 3.1 — the tag is the
/// destination address, so every hop fixes one address bit). This is the
/// ground truth the d-choice candidate enumeration
/// (`iadm_core::candidates`) must reproduce: pivot theory says the local
/// `{ΔC, ΔC̄}` filter *is* the routable set, and the property tests pin
/// that claim against this oracle.
///
/// # Panics
///
/// Panics if `stage`, `sw` or `dest` is out of range for `size`.
pub fn routable_kinds(
    size: Size,
    blockages: &BlockageMap,
    stage: usize,
    sw: usize,
    dest: usize,
) -> Vec<LinkKind> {
    assert!(
        stage < size.stages(),
        "stage {stage} out of range for {size}"
    );
    assert!(sw < size.n(), "switch {sw} out of range for {size}");
    assert!(
        dest < size.n(),
        "destination {dest} out of range for {size}"
    );
    let n = size.n();
    LinkKind::ALL
        .into_iter()
        .filter(|&kind| {
            let link = Link::new(stage, sw, kind);
            if blockages.is_blocked(link) {
                return false;
            }
            // Tag routing fixes bit `stage` of the address at this hop.
            let to = link.target(size);
            if bit(to, stage) != bit(dest, stage) {
                return false;
            }
            // Sweep the remaining stages under the same per-hop tag-bit
            // constraint: does `dest` survive to the output column?
            let mut frontier = vec![false; n];
            frontier[to] = true;
            for later in stage + 1..size.stages() {
                let mut next = vec![false; n];
                for (j, _) in frontier.iter().enumerate().filter(|(_, &f)| f) {
                    for k in LinkKind::ALL {
                        let l = Link::new(later, j, k);
                        if blockages.is_free(l) {
                            let tgt = l.target(size);
                            if bit(tgt, later) == bit(dest, later) {
                                next[tgt] = true;
                            }
                        }
                    }
                }
                frontier = next;
            }
            frontier[dest]
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use iadm_fault::scenario::{self, KindFilter};
    use iadm_rng::StdRng;

    fn size8() -> Size {
        Size::new(8).unwrap()
    }

    #[test]
    fn unblocked_network_connects_everything() {
        let size = size8();
        let blockages = BlockageMap::new(size);
        for s in size.switches() {
            for d in size.switches() {
                let p = find_free_path(size, &blockages, s, d).unwrap();
                assert_eq!(p.destination(size), d);
                assert_eq!(p.source(), s);
            }
        }
    }

    #[test]
    fn forced_prefix_blockage_disconnects() {
        let size = size8();
        // s == d: the only path is all-straight on switch s.
        let mut blockages = BlockageMap::new(size);
        blockages.block(Link::straight(1, 3));
        assert!(!free_path_exists(size, &blockages, 3, 3));
        assert!(free_path_exists(size, &blockages, 3, 4));
    }

    #[test]
    fn returned_paths_always_avoid_blockages() {
        let size = Size::new(16).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..100 {
            let blockages = scenario::random_faults(&mut rng, size, 30, KindFilter::Any);
            for s in [0usize, 7, 12] {
                for d in [1usize, 9, 15] {
                    if let Some(p) = find_free_path(size, &blockages, s, d) {
                        assert!(blockages.path_is_free(&p));
                        assert_eq!(p.destination(size), d);
                    }
                }
            }
        }
    }

    #[test]
    fn reachable_destinations_matches_pairwise_queries() {
        let size = size8();
        let mut rng = StdRng::seed_from_u64(17);
        for _ in 0..25 {
            let blockages = scenario::random_faults(&mut rng, size, 15, KindFilter::Any);
            for s in size.switches() {
                let reach = reachable_destinations(size, &blockages, s);
                for d in size.switches() {
                    assert_eq!(reach[d], free_path_exists(size, &blockages, s, d));
                }
            }
        }
    }

    #[test]
    fn fully_blocked_network_reaches_nothing() {
        let size = size8();
        let mut rng = StdRng::seed_from_u64(2);
        let blockages = scenario::bernoulli_faults(&mut rng, size, 1.0, KindFilter::Any);
        for s in size.switches() {
            assert!(reachable_destinations(size, &blockages, s)
                .iter()
                .all(|&b| !b));
        }
    }
}
