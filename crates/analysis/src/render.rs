//! ASCII rendering of networks, states and paths — reproduces the paper's
//! figures in text form (Figures 1–4, 7 and 8).

use iadm_core::NetworkState;
use iadm_topology::{bit, LinkKind, Multistage, Path, Size};
use std::fmt::Write as _;

/// Renders the switch-by-switch connection table of a network, one stage
/// per block: for every switch the targets of its output links
/// (`-`, `=`, `+` as present). This is the textual form of the paper's
/// Figures 2 and 3.
///
/// # Example
///
/// ```
/// use iadm_analysis::render::connection_table;
/// use iadm_topology::{Iadm, Size};
///
/// # fn main() -> Result<(), iadm_topology::SizeError> {
/// let table = connection_table(&Iadm::new(Size::new(4)?));
/// assert!(table.contains("IADM network"));
/// assert!(table.contains("switch"));
/// # Ok(())
/// # }
/// ```
pub fn connection_table<M: Multistage + ?Sized>(net: &M) -> String {
    let size = net.size();
    let mut out = String::new();
    let _ = writeln!(out, "{} network, {}:", net.name(), size);
    for stage in size.stage_indices() {
        let _ = writeln!(
            out,
            "  stage {stage} (displacement ±2^{}):",
            net.delta_exponent(stage)
        );
        for j in size.switches() {
            let parity = if bit(j, net.delta_exponent(stage)) == 0 {
                "even"
            } else {
                "odd "
            };
            let links: Vec<String> = net
                .outputs(stage, j)
                .map(|(kind, to)| format!("{kind}{to}"))
                .collect();
            let _ = writeln!(out, "    switch {j:>3} [{parity}] -> {}", links.join(" "));
        }
    }
    out
}

/// Renders a path as the paper writes them:
/// `(s ∈ S0, j ∈ S1, …, d ∈ Sn)`.
pub fn path_inline(size: Size, path: &Path) -> String {
    let parts: Vec<String> = path
        .switches(size)
        .iter()
        .enumerate()
        .map(|(stage, sw)| format!("{sw} in S{stage}"))
        .collect();
    format!("({})", parts.join(", "))
}

/// Renders one stage column per line with the path's switch marked, plus the
/// link kinds taken — a quick visual check of routes in examples.
pub fn path_column_view(size: Size, path: &Path) -> String {
    let mut out = String::new();
    let switches = path.switches(size);
    for (stage, window) in switches.windows(2).enumerate() {
        let kind = path.kind_at(stage);
        let _ = writeln!(
            out,
            "  S{stage}:{:>3}  --{}-->  S{}:{:>3}",
            window[0],
            kind,
            stage + 1,
            window[1]
        );
    }
    out
}

/// Renders a network state as a grid of `C`/`~` characters (stage per row).
pub fn state_grid(state: &NetworkState) -> String {
    let size = state.size();
    let mut out = String::new();
    for stage in size.stage_indices() {
        let _ = write!(out, "  stage {stage}: ");
        for j in size.switches() {
            let ch = match state.get(stage, j) {
                iadm_core::SwitchState::C => 'C',
                iadm_core::SwitchState::Cbar => '~',
            };
            let _ = write!(out, "{ch}");
        }
        let _ = writeln!(out);
    }
    out
}

/// Renders the full Figure-7-style listing: every path of a pair with its
/// signed-digit representation.
pub fn all_paths_listing(size: Size, source: usize, dest: usize) -> String {
    let mut out = String::new();
    let paths = crate::enumerate::all_paths(size, source, dest);
    let _ = writeln!(
        out,
        "all {} routing paths from {source} to {dest} (N={}):",
        paths.len(),
        size.n()
    );
    for p in &paths {
        let digits: Vec<String> = p
            .kinds()
            .iter()
            .enumerate()
            .map(|(i, k)| match k {
                LinkKind::Minus => format!("-2^{i}"),
                LinkKind::Straight => "  0 ".to_string(),
                LinkKind::Plus => format!("+2^{i}"),
            })
            .collect();
        let _ = writeln!(out, "  {}  [{}]", path_inline(size, p), digits.join(" "));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use iadm_topology::{ICube, Iadm};

    fn size8() -> Size {
        Size::new(8).unwrap()
    }

    #[test]
    fn connection_table_mentions_every_switch() {
        let table = connection_table(&Iadm::new(size8()));
        assert!(table.contains("IADM network"));
        for stage in 0..3 {
            assert!(table.contains(&format!("stage {stage}")));
        }
        // 3 stages x 8 switches = 24 switch lines.
        assert_eq!(table.matches("switch").count(), 24);
    }

    #[test]
    fn icube_table_has_two_links_per_switch() {
        let table = connection_table(&ICube::new(size8()));
        for line in table.lines().filter(|l| l.contains("switch")) {
            let arrow = line.split("->").nth(1).unwrap();
            assert_eq!(arrow.split_whitespace().count(), 2, "{line}");
        }
    }

    #[test]
    fn path_inline_matches_paper_notation() {
        let path = Path::new(1, vec![LinkKind::Plus, LinkKind::Plus, LinkKind::Plus]);
        assert_eq!(
            path_inline(size8(), &path),
            "(1 in S0, 2 in S1, 4 in S2, 0 in S3)"
        );
    }

    #[test]
    fn state_grid_shape() {
        let grid = state_grid(&NetworkState::all_c(size8()));
        assert_eq!(grid.lines().count(), 3);
        assert_eq!(grid.matches('C').count(), 24);
    }

    #[test]
    fn figure7_listing_contains_all_four_paths() {
        let listing = all_paths_listing(size8(), 1, 0);
        assert!(listing.contains("all 4 routing paths"));
        assert!(listing.contains("(1 in S0, 0 in S1, 0 in S2, 0 in S3)"));
        assert!(listing.contains("(1 in S0, 2 in S1, 4 in S2, 0 in S3)"));
    }

    #[test]
    fn column_view_one_line_per_stage() {
        let path = Path::new(1, vec![LinkKind::Plus, LinkKind::Minus, LinkKind::Straight]);
        let view = path_column_view(size8(), &path);
        assert_eq!(view.lines().count(), 3);
    }
}
