//! Critical links: single points of failure per source/destination pair.
//!
//! A link is *critical* for a pair when every routing path of the pair
//! uses it — equivalently, blocking it alone disconnects the pair. Pivot
//! theory pins these down exactly: below `k̂ = v₂(d - s)` there is a
//! single pivot (the source switch, by Lemma A2.1) and its straight link
//! is the only participating link, so it is critical; at stage `k̂` the
//! pivot offers two equivalent nonstraight links (Theorem 3.2) and above
//! `k̂` there are two pivots — no single link is ever critical there.
//!
//! Hence: `critical(s, d) = { straight(l, s) : l < k̂ }`, and every link of
//! the unique all-straight path when `s = d`. This module computes the set
//! in O(log N) and the tests verify it against brute force (blocking each
//! of the `3·N·log N` links and consulting the oracle).

use iadm_core::pivot::k_hat;
use iadm_topology::{Link, Size};

/// The links whose individual failure disconnects `(s, d)`.
///
/// # Panics
///
/// Panics if `s` or `d` is `>= N`.
///
/// # Example
///
/// ```
/// use iadm_analysis::critical::critical_links;
/// use iadm_topology::{Link, Size};
///
/// # fn main() -> Result<(), iadm_topology::SizeError> {
/// let size = Size::new(8)?;
/// // 0 -> 4: distance 4 = 2^2, so stages 0 and 1 are forced straight.
/// assert_eq!(
///     critical_links(size, 0, 4),
///     vec![Link::straight(0, 0), Link::straight(1, 0)]
/// );
/// // 1 -> 0: distance 7 is odd — no critical links at all.
/// assert!(critical_links(size, 1, 0).is_empty());
/// # Ok(())
/// # }
/// ```
pub fn critical_links(size: Size, s: usize, d: usize) -> Vec<Link> {
    assert!(s < size.n() && d < size.n(), "address out of range");
    let forced_stages = match k_hat(size, s, d) {
        None => size.stages(), // s == d: the whole path is forced
        Some(k) => k,
    };
    (0..forced_stages).map(|l| Link::straight(l, s)).collect()
}

/// The number of pairs for which `link` is critical — a per-link
/// importance measure for maintenance prioritization. Only straight links
/// ever score above zero (Theorem 3.2: nonstraight links always have a
/// same-destination twin).
pub fn criticality(size: Size, link: Link) -> usize {
    let mut count = 0;
    for s in size.switches() {
        for d in size.switches() {
            if critical_links(size, s, d).contains(&link) {
                count += 1;
            }
        }
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle;
    use iadm_fault::scenario::{self, KindFilter};
    use iadm_fault::BlockageMap;
    use iadm_topology::LinkKind;

    #[test]
    fn matches_brute_force_everywhere() {
        // Ground truth: a link is critical iff blocking it alone
        // disconnects the pair.
        for n in [4usize, 8, 16] {
            let size = Size::new(n).unwrap();
            let links = scenario::candidate_links(size, KindFilter::Any);
            for s in size.switches() {
                for d in size.switches() {
                    let predicted = critical_links(size, s, d);
                    for &link in &links {
                        let blockages = BlockageMap::from_links(size, [link]);
                        let disconnects = !oracle::free_path_exists(size, &blockages, s, d);
                        assert_eq!(
                            predicted.contains(&link),
                            disconnects,
                            "N={n} s={s} d={d} {link}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn nonstraight_links_are_never_critical() {
        let size = Size::new(16).unwrap();
        for s in size.switches() {
            for d in size.switches() {
                assert!(critical_links(size, s, d)
                    .iter()
                    .all(|l| l.kind == LinkKind::Straight));
            }
        }
    }

    #[test]
    fn odd_distance_pairs_have_no_single_point_of_failure() {
        let size = Size::new(8).unwrap();
        for s in size.switches() {
            for d in size.switches() {
                if size.sub(d, s) % 2 == 1 {
                    assert!(critical_links(size, s, d).is_empty(), "s={s} d={d}");
                }
            }
        }
    }

    #[test]
    fn self_pairs_depend_on_every_straight_hop() {
        let size = Size::new(8).unwrap();
        for s in size.switches() {
            let critical = critical_links(size, s, s);
            assert_eq!(critical.len(), size.stages());
            for (stage, link) in critical.iter().enumerate() {
                assert_eq!(*link, Link::straight(stage, s));
            }
        }
    }

    #[test]
    fn criticality_scores() {
        // straight(0, j) is critical exactly for pairs (j, d) with even
        // distance: N/2 destinations.
        let size = Size::new(8).unwrap();
        for j in size.switches() {
            assert_eq!(criticality(size, Link::straight(0, j)), 4);
            assert_eq!(criticality(size, Link::plus(0, j)), 0);
            assert_eq!(criticality(size, Link::minus(1, j)), 0);
        }
        // straight(1, j): critical for pairs (j, d) with distance ≡ 0 mod 4.
        assert_eq!(criticality(size, Link::straight(1, 0)), 2);
    }
}
