//! Analysis tools for the IADM network: exhaustive path enumeration, a
//! ground-truth rerouting oracle, reachability metrics and ASCII rendering.
//!
//! The oracle ([`oracle`]) is the reference implementation against which the
//! paper's Algorithm REROUTE is validated: it performs a plain breadth-first
//! search over the layered IADM graph with blocked links removed, so its
//! "path exists / does not exist" verdict is trivially correct. REROUTE's
//! central claim — it finds a blockage-free path *iff* one exists — is
//! property-tested against this oracle (see the `iadm` integration tests
//! and experiment E3).
//!
//! [`enumerate`] lists *all* routing paths of a source/destination pair,
//! reproducing the paper's Figure 7 and the Parker–Raghavendra result that
//! paths correspond to signed-digit representations of the distance.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod availability;
pub mod critical;
pub mod dot;
pub mod enumerate;
pub mod oracle;
pub mod reach;
pub mod render;
