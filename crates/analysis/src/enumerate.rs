//! Exhaustive enumeration of the routing paths of a source/destination
//! pair — the computational form of Parker–Raghavendra's observation that
//! IADM paths correspond one-to-one to signed-digit representations of the
//! distance, and the generator behind the paper's Figure 7.

use iadm_fault::BlockageMap;
use iadm_topology::{LinkKind, Path, Size};

/// All routing paths from `source` to `dest` in an unblocked IADM network
/// of `size`, in lexicographic `Minus < Straight < Plus` order of the link
/// kinds.
///
/// Each path corresponds to a representation of the distance
/// `D = (d - s) mod N` as `Σ c_i 2^i (mod N)` with digits `c_i ∈ {-1,0,1}`.
///
/// # Panics
///
/// Panics if `source` or `dest` is `>= N`.
///
/// # Example — the paper's Figure 7 (all paths from 1 to 0, N = 8)
///
/// ```
/// use iadm_analysis::enumerate::all_paths;
/// use iadm_topology::Size;
///
/// # fn main() -> Result<(), iadm_topology::SizeError> {
/// let size = Size::new(8)?;
/// let paths = all_paths(size, 1, 0);
/// let as_switches: Vec<Vec<usize>> =
///     paths.iter().map(|p| p.switches(size)).collect();
/// assert_eq!(as_switches, vec![
///     vec![1, 0, 0, 0], // -1
///     vec![1, 2, 0, 0], // +1 -2
///     vec![1, 2, 4, 0], // +1 +2 -4
///     vec![1, 2, 4, 0], // +1 +2 +4 (distinct links at the last stage)
/// ]);
/// # Ok(())
/// # }
/// ```
pub fn all_paths(size: Size, source: usize, dest: usize) -> Vec<Path> {
    all_paths_avoiding(size, source, dest, None)
}

/// All routing paths from `source` to `dest` that avoid every blockage.
pub fn all_free_paths(
    size: Size,
    blockages: &BlockageMap,
    source: usize,
    dest: usize,
) -> Vec<Path> {
    all_paths_avoiding(size, source, dest, Some(blockages))
}

fn all_paths_avoiding(
    size: Size,
    source: usize,
    dest: usize,
    blockages: Option<&BlockageMap>,
) -> Vec<Path> {
    assert!(source < size.n(), "source {source} out of range for {size}");
    assert!(
        dest < size.n(),
        "destination {dest} out of range for {size}"
    );
    let mut result = Vec::new();
    let mut kinds = Vec::with_capacity(size.stages());
    descend(
        size,
        blockages,
        source,
        source,
        dest,
        0,
        &mut kinds,
        &mut result,
    );
    result
}

#[allow(clippy::too_many_arguments)]
fn descend(
    size: Size,
    blockages: Option<&BlockageMap>,
    source: usize,
    sw: usize,
    dest: usize,
    stage: usize,
    kinds: &mut Vec<LinkKind>,
    result: &mut Vec<Path>,
) {
    if stage == size.stages() {
        if sw == dest {
            result.push(Path::new(source, kinds.clone()));
        }
        return;
    }
    // Prune: the remaining stages can only change bits >= stage, so the low
    // `stage` bits must already match the destination (Lemma 2.1).
    let mask = (1usize << stage) - 1;
    if sw & mask != dest & mask {
        return;
    }
    for kind in LinkKind::ALL {
        if let Some(b) = blockages {
            if b.is_blocked(iadm_topology::Link::new(stage, sw, kind)) {
                continue;
            }
        }
        kinds.push(kind);
        descend(
            size,
            blockages,
            source,
            kind.target(size, stage, sw),
            dest,
            stage + 1,
            kinds,
            result,
        );
        kinds.pop();
    }
}

/// The number of routing paths from `source` to `dest` — computed by
/// dynamic programming over stages, without materializing the paths.
pub fn count_paths(size: Size, source: usize, dest: usize) -> u64 {
    assert!(source < size.n(), "source {source} out of range for {size}");
    assert!(
        dest < size.n(),
        "destination {dest} out of range for {size}"
    );
    let n = size.n();
    let mut counts = vec![0u64; n];
    counts[source] = 1;
    for stage in size.stage_indices() {
        let mut next = vec![0u64; n];
        for sw in 0..n {
            if counts[sw] == 0 {
                continue;
            }
            for kind in LinkKind::ALL {
                next[kind.target(size, stage, sw)] += counts[sw];
            }
        }
        counts = next;
    }
    counts[dest]
}

/// All signed-digit (`-1, 0, +1`) stage-digit vectors realizing the
/// distance `(dest - source) mod N`: digit `i` is the sign of the link the
/// corresponding path takes at stage `i`.
pub fn signed_digit_representations(size: Size, source: usize, dest: usize) -> Vec<Vec<i8>> {
    all_paths(size, source, dest)
        .into_iter()
        .map(|p| {
            p.kinds()
                .iter()
                .map(|k| match k {
                    LinkKind::Minus => -1i8,
                    LinkKind::Straight => 0,
                    LinkKind::Plus => 1,
                })
                .collect()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn size8() -> Size {
        Size::new(8).unwrap()
    }

    #[test]
    fn figure7_has_four_paths() {
        let paths = all_paths(size8(), 1, 0);
        assert_eq!(paths.len(), 4);
        for p in &paths {
            assert_eq!(p.destination(size8()), 0);
            assert_eq!(p.source(), 1);
        }
    }

    #[test]
    fn identity_pair_has_exactly_one_path() {
        let size = size8();
        for s in size.switches() {
            let paths = all_paths(size, s, s);
            assert_eq!(paths.len(), 1);
            assert!(paths[0].kinds().iter().all(|k| *k == LinkKind::Straight));
        }
    }

    #[test]
    fn count_matches_enumeration() {
        let size = size8();
        for s in size.switches() {
            for d in size.switches() {
                assert_eq!(
                    count_paths(size, s, d),
                    all_paths(size, s, d).len() as u64,
                    "s={s} d={d}"
                );
            }
        }
    }

    #[test]
    fn path_counts_depend_only_on_distance() {
        let size = Size::new(16).unwrap();
        for d in size.switches() {
            let reference = count_paths(size, 0, d);
            for s in size.switches() {
                assert_eq!(count_paths(size, s, size.add(s, d)), reference);
            }
        }
    }

    #[test]
    fn digit_representations_sum_to_distance() {
        let size = size8();
        for s in size.switches() {
            for d in size.switches() {
                for rep in signed_digit_representations(size, s, d) {
                    let sum: i64 = rep
                        .iter()
                        .enumerate()
                        .map(|(i, &c)| c as i64 * (1i64 << i))
                        .sum();
                    let dist = size.sub(d, s) as i64;
                    assert_eq!(
                        sum.rem_euclid(size.n() as i64),
                        dist,
                        "s={s} d={d} rep={rep:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn free_paths_subset_of_all_paths() {
        let size = size8();
        let mut blockages = BlockageMap::new(size);
        blockages.block(iadm_topology::Link::minus(0, 1));
        let all = all_paths(size, 1, 0);
        let free = all_free_paths(size, &blockages, 1, 0);
        assert_eq!(all.len(), 4);
        assert_eq!(free.len(), 3);
        for p in &free {
            assert!(blockages.path_is_free(p));
        }
    }

    #[test]
    fn adjacent_pair_path_count_is_n() {
        // Distance 1 = 2^0 has representations 1, 1-2+... hmm: verified
        // empirically: for N=8 the count is 4 (1; -1+2; -1-2+4; -1-2-4).
        let size = size8();
        assert_eq!(count_paths(size, 0, 1), 4);
        // Distance 0 has exactly 1; distance N/2 is the richest last-stage
        // case: ±4 both reach, and representations abound.
        assert_eq!(count_paths(size, 0, 0), 1);
    }
}
