//! Graphviz DOT output for networks, subgraphs, paths and multicast trees
//! — figure-quality renderings of the paper's diagrams.
//!
//! The emitted graphs use one cluster per stage column (ranked left to
//! right), so `dot -Tsvg` reproduces the layout of the paper's Figures
//! 1–3 and 8.

use iadm_core::broadcast::MulticastTree;
use iadm_topology::{LayeredGraph, Link, Multistage, Path, Size};
use std::collections::BTreeSet;
use std::fmt::Write as _;

/// Node identifier for switch `sw` of column `col` (columns `0..=n`).
fn node_id(col: usize, sw: usize) -> String {
    format!("s{col}_{sw}")
}

fn emit_columns(out: &mut String, size: Size) {
    for col in 0..=size.stages() {
        let _ = writeln!(out, "  subgraph cluster_stage{col} {{");
        let label = if col == size.stages() {
            "out".to_string()
        } else {
            format!("S{col}")
        };
        let _ = writeln!(out, "    label=\"{label}\"; rank=same; style=dotted;");
        for sw in size.switches() {
            let _ = writeln!(out, "    {} [label=\"{sw}\", shape=box];", node_id(col, sw));
        }
        let _ = writeln!(out, "  }}");
    }
}

fn edge_attrs(link: Link, highlighted: bool) -> String {
    let style = match link.kind {
        iadm_topology::LinkKind::Straight => "solid",
        _ => "dashed",
    };
    if highlighted {
        format!("[style={style}, color=red, penwidth=2.0]")
    } else {
        format!("[style={style}]")
    }
}

/// Renders a whole network as DOT.
///
/// # Example
///
/// ```
/// use iadm_analysis::dot;
/// use iadm_topology::{Iadm, Size};
///
/// # fn main() -> Result<(), iadm_topology::SizeError> {
/// let text = dot::network(&Iadm::new(Size::new(4)?));
/// assert!(text.starts_with("digraph"));
/// assert!(text.contains("s0_0 -> s1_1"));
/// # Ok(())
/// # }
/// ```
pub fn network<M: Multistage + ?Sized>(net: &M) -> String {
    let size = net.size();
    let mut out = String::new();
    let _ = writeln!(out, "digraph {} {{", net.name());
    let _ = writeln!(out, "  rankdir=LR; splines=true;");
    emit_columns(&mut out, size);
    for link in net.all_links() {
        let to = net.link_target(link.stage, link.from, link.kind);
        let _ = writeln!(
            out,
            "  {} -> {} {};",
            node_id(link.stage, link.from),
            node_id(link.stage + 1, to),
            edge_attrs(link, false)
        );
    }
    let _ = writeln!(out, "}}");
    out
}

/// Renders a network with one path highlighted in red — the rendering
/// behind the Figure 5/6/7 reroute illustrations.
pub fn network_with_path<M: Multistage + ?Sized>(net: &M, path: &Path) -> String {
    let size = net.size();
    let on_path: BTreeSet<Link> = path.links(size).into_iter().collect();
    let mut out = String::new();
    let _ = writeln!(out, "digraph {}_path {{", net.name());
    let _ = writeln!(out, "  rankdir=LR; splines=true;");
    emit_columns(&mut out, size);
    for link in net.all_links() {
        let to = net.link_target(link.stage, link.from, link.kind);
        let _ = writeln!(
            out,
            "  {} -> {} {};",
            node_id(link.stage, link.from),
            node_id(link.stage + 1, to),
            edge_attrs(link, on_path.contains(&link))
        );
    }
    let _ = writeln!(out, "}}");
    out
}

/// Renders a [`LayeredGraph`] (e.g. a Figure-8 cube subgraph) as DOT.
pub fn layered_graph(graph: &LayeredGraph, name: &str) -> String {
    let size = graph.size();
    let mut out = String::new();
    let _ = writeln!(out, "digraph {name} {{");
    let _ = writeln!(out, "  rankdir=LR; splines=true;");
    emit_columns(&mut out, size);
    for edge in graph.edges() {
        let _ = writeln!(
            out,
            "  {} -> {} {};",
            node_id(edge.link.stage, edge.link.from),
            node_id(edge.link.stage + 1, edge.to),
            edge_attrs(edge.link, false)
        );
    }
    let _ = writeln!(out, "}}");
    out
}

/// Renders a multicast tree: tree links red over the faded network.
pub fn multicast<M: Multistage + ?Sized>(net: &M, tree: &MulticastTree) -> String {
    let size = net.size();
    let tree_links: BTreeSet<Link> = tree.links().into_iter().collect();
    let mut out = String::new();
    let _ = writeln!(out, "digraph multicast {{");
    let _ = writeln!(out, "  rankdir=LR; splines=true;");
    emit_columns(&mut out, size);
    for link in net.all_links() {
        let to = net.link_target(link.stage, link.from, link.kind);
        let _ = writeln!(
            out,
            "  {} -> {} {};",
            node_id(link.stage, link.from),
            node_id(link.stage + 1, to),
            edge_attrs(link, tree_links.contains(&link))
        );
    }
    let _ = writeln!(out, "}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use iadm_core::broadcast::broadcast_tree;
    use iadm_core::NetworkState;
    use iadm_topology::{ICube, Iadm, LinkKind};

    fn size8() -> Size {
        Size::new(8).unwrap()
    }

    #[test]
    fn network_dot_has_all_edges() {
        let net = Iadm::new(size8());
        let text = network(&net);
        // 3 stages x 8 switches x 3 links.
        assert_eq!(text.matches(" -> ").count(), 72);
        assert!(text.contains("digraph IADM"));
        assert!(text.contains("cluster_stage3"), "output column present");
    }

    #[test]
    fn icube_dot_has_two_edges_per_switch() {
        let text = network(&ICube::new(size8()));
        assert_eq!(text.matches(" -> ").count(), 48);
    }

    #[test]
    fn path_highlight_marks_exactly_n_edges() {
        let net = Iadm::new(size8());
        let path = Path::new(1, vec![LinkKind::Plus, LinkKind::Plus, LinkKind::Plus]);
        let text = network_with_path(&net, &path);
        assert_eq!(text.matches("color=red").count(), 3);
    }

    #[test]
    fn subgraph_dot_round_trips_edge_count() {
        let g = LayeredGraph::from_network(&ICube::new(size8()));
        let text = layered_graph(&g, "cube");
        assert_eq!(text.matches(" -> ").count(), g.edge_count());
    }

    #[test]
    fn multicast_dot_highlights_tree_links() {
        let size = size8();
        let net = Iadm::new(size);
        let tree = broadcast_tree(size, 0, &NetworkState::all_c(size));
        let text = multicast(&net, &tree);
        assert_eq!(text.matches("color=red").count(), tree.link_count());
    }

    #[test]
    fn dot_is_parseable_shape() {
        // Cheap syntax sanity: balanced braces, semicolon-terminated edges.
        let text = network(&Iadm::new(size8()));
        assert_eq!(text.matches('{').count(), text.matches('}').count());
        for line in text.lines().filter(|l| l.contains("->")) {
            assert!(line.trim_end().ends_with(';'), "{line}");
        }
    }
}
