//! Availability under random independent link failures: the probability a
//! pair (or the whole network) remains routable when every link fails
//! independently with probability `p`, per routing scheme.
//!
//! The fault-tolerance framing of the paper made quantitative: the ICube
//! network offers one path per pair (pair survival exactly `(1-p)^n`, in
//! closed form), while the IADM's redundancy lifts the curve — by how much
//! is measured here by Monte Carlo over the exact reachability machinery.

use crate::reach::Scheme;
use iadm_fault::scenario::{self, KindFilter};
use iadm_rng::{Rng, StdRng};
use iadm_topology::Size;

/// The closed-form ICube pair availability: a single path of `n` links,
/// each up with probability `1 - p`.
pub fn icube_pair_availability(size: Size, p: f64) -> f64 {
    (1.0 - p).powi(size.stages() as i32)
}

/// Monte Carlo estimate of the mean pair availability under `scheme` when
/// every link fails independently with probability `p` (`trials` fault
/// maps, all `N²` pairs each).
///
/// # Panics
///
/// Panics unless `0 <= p <= 1` and `trials > 0`.
pub fn pair_availability<R: Rng>(
    rng: &mut R,
    size: Size,
    p: f64,
    scheme: Scheme,
    trials: usize,
) -> f64 {
    assert!((0.0..=1.0).contains(&p), "probability {p} out of range");
    assert!(trials > 0, "need at least one trial");
    let mut sum = 0.0;
    for _ in 0..trials {
        let blockages = scenario::bernoulli_faults(rng, size, p, KindFilter::Any);
        sum += crate::reach::routable_fraction(size, &blockages, scheme);
    }
    sum / trials as f64
}

/// One row of an availability sweep: the mean pair availability of each
/// scheme at failure probability `p`.
#[derive(Debug, Clone)]
pub struct AvailabilityRow {
    /// Per-link failure probability.
    pub p: f64,
    /// Closed-form ICube value `(1-p)^n`.
    pub icube_closed_form: f64,
    /// Monte Carlo estimates in [`Scheme::ALL`] order.
    pub measured: [f64; 4],
}

/// Sweeps failure probabilities and returns one row per `p`. Every scheme
/// is evaluated on the *same* fault maps per trial, so the schemes of one
/// row are directly comparable (and the TSDT-equals-oracle identity holds
/// exactly).
///
/// # Example
///
/// ```
/// use iadm_analysis::availability::sweep;
/// use iadm_topology::Size;
///
/// # fn main() -> Result<(), iadm_topology::SizeError> {
/// let rows = sweep(Size::new(8)?, &[0.05], 5, 42);
/// // Redundancy helps: TSDT+REROUTE availability >= plain ICube.
/// assert!(rows[0].measured[2] >= rows[0].measured[0]);
/// # Ok(())
/// # }
/// ```
pub fn sweep(size: Size, ps: &[f64], trials: usize, seed: u64) -> Vec<AvailabilityRow> {
    let mut rng = StdRng::seed_from_u64(seed);
    ps.iter()
        .map(|&p| {
            let mut measured = [0.0f64; 4];
            for _ in 0..trials {
                let blockages = scenario::bernoulli_faults(&mut rng, size, p, KindFilter::Any);
                for (i, scheme) in Scheme::ALL.into_iter().enumerate() {
                    measured[i] += crate::reach::routable_fraction(size, &blockages, scheme);
                }
            }
            for m in &mut measured {
                *m /= trials as f64;
            }
            AvailabilityRow {
                p,
                icube_closed_form: icube_pair_availability(size, p),
                measured,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn size8() -> Size {
        Size::new(8).unwrap()
    }

    #[test]
    fn closed_form_matches_monte_carlo_for_icube() {
        let size = size8();
        let mut rng = StdRng::seed_from_u64(7);
        for p in [0.01f64, 0.05, 0.1] {
            let mc = pair_availability(&mut rng, size, p, Scheme::ICube, 400);
            let cf = icube_pair_availability(size, p);
            assert!((mc - cf).abs() < 0.02, "p={p}: MC {mc} vs closed form {cf}");
        }
    }

    #[test]
    fn redundancy_lifts_availability() {
        let size = size8();
        let mut rng = StdRng::seed_from_u64(11);
        let p = 0.08;
        let icube = pair_availability(&mut rng, size, p, Scheme::ICube, 150);
        let ssdt = pair_availability(&mut rng, size, p, Scheme::Ssdt, 150);
        let tsdt = pair_availability(&mut rng, size, p, Scheme::TsdtReroute, 150);
        assert!(ssdt > icube, "SSDT {ssdt} vs ICube {icube}");
        assert!(tsdt > ssdt, "TSDT {tsdt} vs SSDT {ssdt}");
    }

    #[test]
    fn extremes_are_exact() {
        let size = size8();
        let mut rng = StdRng::seed_from_u64(3);
        for scheme in Scheme::ALL {
            assert_eq!(pair_availability(&mut rng, size, 0.0, scheme, 3), 1.0);
            // At p = 1 only the trivial question "is s reachable from s
            // without links" remains — and even s == s needs its straight
            // links, so everything fails.
            assert_eq!(pair_availability(&mut rng, size, 1.0, scheme, 3), 0.0);
        }
    }

    #[test]
    fn sweep_is_monotone_in_p() {
        let size = size8();
        let rows = sweep(size, &[0.02, 0.08, 0.2], 60, 5);
        for pair in rows.windows(2) {
            for i in 0..4 {
                assert!(
                    pair[1].measured[i] <= pair[0].measured[i] + 0.03,
                    "availability should fall as p rises"
                );
            }
            assert!(pair[1].icube_closed_form < pair[0].icube_closed_form);
        }
    }
}
