//! A self-timed micro-benchmark harness replacing `criterion`.
//!
//! Each benchmark runs a closure in adaptively sized batches: a probe run
//! picks a batch size targeting ~20 ms, then a fixed number of batches is
//! timed and the per-iteration median/min/mean are printed. No statistics
//! machinery, no registry dependency — enough to observe the paper's
//! complexity shapes (flat vs `log N` vs exponential).

use std::hint::black_box;
use std::time::Instant;

/// Number of timed batches per benchmark.
const BATCHES: usize = 15;

/// Target wall time per batch, in nanoseconds (~20 ms).
const TARGET_BATCH_NS: u128 = 20_000_000;

/// A named group of benchmarks, mirroring criterion's `benchmark_group`
/// output shape (`group/name` per line).
pub struct Group {
    name: &'static str,
}

impl Group {
    /// Starts a group: prints a header, returns the handle.
    pub fn new(name: &'static str) -> Self {
        println!("\n## {name}");
        println!(
            "{:<44} {:>12} {:>12} {:>12} {:>8}",
            "benchmark", "median ns", "min ns", "mean ns", "iters"
        );
        Group { name }
    }

    /// Times `f`, printing one row. Returns the median ns/iteration.
    pub fn bench<F: FnMut()>(&self, label: &str, mut f: F) -> f64 {
        // Probe: how many iterations fit the target batch time?
        let probe_start = Instant::now();
        f();
        let one = probe_start.elapsed().as_nanos().max(1);
        let per_batch = (TARGET_BATCH_NS / one).clamp(1, 10_000_000) as usize;

        let mut samples: Vec<f64> = (0..BATCHES)
            .map(|_| {
                let start = Instant::now();
                for _ in 0..per_batch {
                    f();
                }
                start.elapsed().as_nanos() as f64 / per_batch as f64
            })
            .collect();
        samples.sort_by(|a, b| a.total_cmp(b));
        let median = samples[samples.len() / 2];
        let min = samples[0];
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        println!(
            "{:<44} {:>12.1} {:>12.1} {:>12.1} {:>8}",
            format!("{}/{label}", self.name),
            median,
            min,
            mean,
            per_batch * BATCHES,
        );
        median
    }
}

/// Re-export so bench bodies can keep `black_box` without `use std::hint`.
pub fn opaque<T>(value: T) -> T {
    black_box(value)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_times_and_reports() {
        let group = Group::new("harness_selftest");
        let mut counter = 0u64;
        let median = group.bench("count", || {
            counter = opaque(counter + 1);
        });
        assert!(median > 0.0);
        assert!(counter > 0);
    }
}
