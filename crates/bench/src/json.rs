//! A small JSON writer replacing `serde_json` for experiment artifacts.
//!
//! The workspace only ever *emits* JSON (machine-readable tables and
//! simulator statistics); it never parses untrusted input. A value tree
//! plus an escaping writer covers that completely and keeps the build
//! hermetic. Object keys keep their insertion order so emitted documents
//! are byte-stable — which the deterministic-replay regression test
//! relies on.

use iadm_sim::SimStats;
use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An unsigned integer (kept exact; not routed through `f64`).
    UInt(u64),
    /// A signed integer.
    Int(i64),
    /// A finite float (non-finite values serialize as `null`).
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from `(key, value)` pairs, preserving order.
    pub fn obj<K: Into<String>>(pairs: impl IntoIterator<Item = (K, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Builds an array.
    pub fn arr(items: impl IntoIterator<Item = Json>) -> Json {
        Json::Arr(items.into_iter().collect())
    }

    /// Compact single-line encoding.
    pub fn encode(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::UInt(v) => out.push_str(&v.to_string()),
            Json::Int(v) => out.push_str(&v.to_string()),
            Json::Float(v) => {
                if v.is_finite() {
                    // Rust's f64 Display is the shortest round-tripping
                    // decimal form, so equal stats encode equally.
                    out.push_str(&v.to_string());
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (key, value)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(key, out);
                    out.push(':');
                    value.write(out);
                }
                out.push('}');
            }
        }
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.encode())
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl From<u64> for Json {
    fn from(v: u64) -> Json {
        Json::UInt(v)
    }
}

impl From<usize> for Json {
    fn from(v: usize) -> Json {
        Json::UInt(v as u64)
    }
}

impl From<i64> for Json {
    fn from(v: i64) -> Json {
        Json::Int(v)
    }
}

impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::Float(v)
    }
}

impl From<bool> for Json {
    fn from(v: bool) -> Json {
        Json::Bool(v)
    }
}

impl From<&str> for Json {
    fn from(v: &str) -> Json {
        Json::Str(v.to_string())
    }
}

impl From<String> for Json {
    fn from(v: String) -> Json {
        Json::Str(v)
    }
}

/// The canonical JSON encoding of a simulation's statistics — every
/// field, in declaration order, so two identical runs encode to
/// identical bytes.
///
/// Transient-fault degradation fields are emitted only when the run
/// processed at least one fault event: static runs (including the
/// pre-PR-4 parity goldens) keep their exact historical byte encoding.
pub fn sim_stats_json(stats: &SimStats) -> Json {
    let mut fields = vec![
        ("injected", Json::from(stats.injected)),
        ("delivered", Json::from(stats.delivered)),
        ("misrouted", Json::from(stats.misrouted)),
        ("dropped", Json::from(stats.dropped)),
        ("refused", Json::from(stats.refused)),
        ("in_flight", Json::from(stats.in_flight)),
        ("latency_sum", Json::from(stats.latency_sum)),
        ("latency_count", Json::from(stats.latency_count)),
        ("latency_max", Json::from(stats.latency_max)),
        ("queue_high_water", Json::from(stats.queue_high_water)),
        (
            "queue_mean_occupancy",
            Json::from(stats.queue_mean_occupancy),
        ),
        ("cycles", Json::from(stats.cycles)),
        ("ports", Json::from(stats.ports)),
        (
            "nonstraight_imbalance",
            Json::from(stats.nonstraight_imbalance),
        ),
        ("max_link_load", Json::from(stats.max_link_load)),
        ("mean_latency", Json::from(stats.mean_latency())),
        ("throughput", Json::from(stats.throughput())),
        ("latency_p50", Json::from(stats.percentile(0.50))),
        ("latency_p95", Json::from(stats.percentile(0.95))),
        ("latency_p99", Json::from(stats.percentile(0.99))),
        (
            "latency_buckets",
            Json::arr(
                stats
                    .latency_histogram
                    .trimmed_counts()
                    .iter()
                    .map(|&c| Json::from(c)),
            ),
        ),
        (
            "stage_link_use",
            Json::arr(stats.stage_link_use.iter().map(|&c| Json::from(c))),
        ),
    ];
    // Wormhole runs additionally report the flit ledger; store-and-forward
    // runs (flits_per_packet == 0) keep their exact historical encoding.
    if stats.flits_per_packet > 0 {
        fields.extend([
            ("flits_per_packet", Json::from(stats.flits_per_packet)),
            ("flits_injected", Json::from(stats.flits_injected)),
            ("flits_delivered", Json::from(stats.flits_delivered)),
            ("flits_dropped", Json::from(stats.flits_dropped)),
            ("flits_refused", Json::from(stats.flits_refused)),
            ("flits_in_flight", Json::from(stats.flits_in_flight)),
        ]);
    }
    if stats.fault_events > 0 {
        fields.extend([
            ("fault_events", Json::from(stats.fault_events)),
            ("reroutes", Json::from(stats.reroutes)),
            (
                "dropped_during_outage",
                Json::from(stats.dropped_during_outage),
            ),
            (
                "dropped_steady",
                Json::from(stats.dropped - stats.dropped_during_outage),
            ),
            ("links_failed", Json::from(stats.links_failed)),
            (
                "link_downtime_cycles",
                Json::from(stats.link_downtime_cycles),
            ),
            ("availability_min", Json::from(stats.availability_min)),
            ("availability_mean", Json::from(stats.availability_mean)),
        ]);
        // Repair-side counters only exist when a repair actually landed
        // (and, for retags, a repair-aware TSDT sender reacted to one), so
        // failure-only timelines — every artifact written before repair
        // awareness existed — keep their exact historical encoding.
        if stats.repair_events > 0 {
            fields.push(("repair_events", Json::from(stats.repair_events)));
        }
        if stats.retags_on_repair > 0 {
            fields.push(("retags_on_repair", Json::from(stats.retags_on_repair)));
        }
    }
    // Closed-loop runs additionally report the workload request ledger;
    // open-loop runs (workload.issued == 0) keep their exact historical
    // encoding.
    if stats.workload.issued > 0 {
        let wl = &stats.workload;
        fields.extend([
            ("requests_issued", Json::from(wl.issued)),
            ("requests_completed", Json::from(wl.completed)),
            ("requests_aborted", Json::from(wl.aborted)),
            ("requests_live", Json::from(wl.live)),
            ("request_latency_sum", Json::from(wl.latency_sum)),
            ("request_latency_count", Json::from(wl.latency_count)),
            ("request_latency_max", Json::from(wl.latency_max)),
            ("request_latency_mean", Json::from(wl.mean_latency())),
            ("request_latency_p50", Json::from(wl.percentile(0.50))),
            ("request_latency_p95", Json::from(wl.percentile(0.95))),
            ("request_latency_p99", Json::from(wl.percentile(0.99))),
            (
                "request_latency_buckets",
                Json::arr(wl.histogram.trimmed_counts().iter().map(|&c| Json::from(c))),
            ),
        ]);
    }
    // Present iff the run stopped at a steady-state convergence boundary
    // (`Simulator::with_convergence`); fixed-horizon runs — every
    // artifact written before convergence detection existed — keep their
    // exact historical encoding.
    if stats.converged_at_cycle > 0 {
        fields.push(("converged_at_cycle", Json::from(stats.converged_at_cycle)));
    }
    Json::obj(fields)
}

/// A minimal JSON parser for *our own* artifacts: validation (does the
/// file parse?) and the round-trip regression (`parse` then [`Json::encode`]
/// reproduces the input bytes for anything this writer emitted). It is not
/// a general-purpose parser — numbers outside `u64`/`i64`/finite-`f64` and
/// exotic escapes are rejected rather than approximated.
pub fn parse(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing bytes at offset {pos}"));
    }
    Ok(value)
}

/// Asserts that `text` is valid JSON whose canonical re-encoding is
/// byte-identical to the input — the round-trip helper the smoke scripts
/// and campaign writer use to validate artifacts before shipping them.
pub fn assert_round_trip(text: &str) -> Result<Json, String> {
    let value = parse(text)?;
    let rewritten = value.encode();
    if rewritten != text {
        return Err(format!(
            "round-trip mismatch: {} bytes in, {} bytes out",
            text.len(),
            rewritten.len()
        ));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, byte: u8) -> Result<(), String> {
    if bytes.get(*pos) == Some(&byte) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!(
            "expected {:?} at offset {pos}",
            char::from(byte),
            pos = *pos
        ))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'n') => parse_literal(bytes, pos, "null", Json::Null),
        Some(b't') => parse_literal(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Json::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Json::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at offset {pos}", pos = *pos)),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut pairs = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(pairs));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                expect(bytes, pos, b':')?;
                let value = parse_value(bytes, pos)?;
                pairs.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(pairs));
                    }
                    _ => return Err(format!("expected ',' or '}}' at offset {pos}", pos = *pos)),
                }
            }
        }
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_literal(bytes: &[u8], pos: &mut usize, word: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(value)
    } else {
        Err(format!("bad literal at offset {pos}", pos = *pos))
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    // Collect raw bytes of each unescaped run, then validate as UTF-8.
    let mut run_start = *pos;
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                out.push_str(str_slice(bytes, run_start, *pos)?);
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                out.push_str(str_slice(bytes, run_start, *pos)?);
                *pos += 1;
                let esc = bytes.get(*pos).ok_or("unterminated escape")?;
                *pos += 1;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'u' => {
                        let hex = bytes.get(*pos..*pos + 4).ok_or("truncated \\u escape")?;
                        let hex = std::str::from_utf8(hex).map_err(|e| e.to_string())?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| format!("bad \\u escape {hex}"))?;
                        *pos += 4;
                        // Our writer only emits \u for C0 controls; reject
                        // surrogates instead of decoding pairs.
                        let c = char::from_u32(code)
                            .ok_or_else(|| format!("escape \\u{hex} is not a scalar value"))?;
                        out.push(c);
                    }
                    other => return Err(format!("unknown escape \\{}", char::from(*other))),
                }
                run_start = *pos;
            }
            Some(_) => *pos += 1,
        }
    }
}

fn str_slice(bytes: &[u8], start: usize, end: usize) -> Result<&str, String> {
    std::str::from_utf8(&bytes[start..end]).map_err(|e| e.to_string())
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let mut is_float = false;
    while let Some(&b) = bytes.get(*pos) {
        match b {
            b'0'..=b'9' => *pos += 1,
            b'.' | b'e' | b'E' | b'+' | b'-' => {
                is_float = true;
                *pos += 1;
            }
            _ => break,
        }
    }
    let text = str_slice(bytes, start, *pos)?;
    if text.is_empty() || text == "-" {
        return Err(format!("bad number at offset {start}"));
    }
    if !is_float {
        if let Ok(v) = text.parse::<u64>() {
            return Ok(Json::UInt(v));
        }
        if let Ok(v) = text.parse::<i64>() {
            return Ok(Json::Int(v));
        }
    }
    let v: f64 = text
        .parse()
        .map_err(|_| format!("bad number {text:?} at offset {start}"))?;
    if !v.is_finite() {
        return Err(format!("non-finite number {text:?}"));
    }
    Ok(Json::Float(v))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_encode_as_json() {
        assert_eq!(Json::Null.encode(), "null");
        assert_eq!(Json::Bool(true).encode(), "true");
        assert_eq!(Json::UInt(u64::MAX).encode(), "18446744073709551615");
        assert_eq!(Json::Int(-5).encode(), "-5");
        assert_eq!(Json::Float(0.5).encode(), "0.5");
        assert_eq!(Json::Float(f64::NAN).encode(), "null");
        assert_eq!(Json::from("hi").encode(), "\"hi\"");
    }

    #[test]
    fn strings_are_escaped() {
        assert_eq!(
            Json::from("a\"b\\c\nd\te\u{01}").encode(),
            "\"a\\\"b\\\\c\\nd\\te\\u0001\""
        );
    }

    #[test]
    fn nesting_and_key_order_are_preserved() {
        let doc = Json::obj([
            ("z", Json::arr([Json::from(1u64), Json::Null])),
            ("a", Json::obj([("k", Json::from(true))])),
        ]);
        assert_eq!(doc.encode(), "{\"z\":[1,null],\"a\":{\"k\":true}}");
    }

    #[test]
    fn parse_round_trips_writer_output() {
        let doc = Json::obj([
            ("name", Json::from("e13 \"sweep\"\n")),
            ("seed", Json::UInt(u64::MAX)),
            ("delta", Json::Int(-3)),
            ("load", Json::Float(0.30000000000000004)),
            ("missing", Json::Null),
            ("ok", Json::Bool(true)),
            (
                "runs",
                Json::arr([Json::arr([]), Json::obj::<&str>([]), Json::from(0.125)]),
            ),
        ]);
        let text = doc.encode();
        let back = assert_round_trip(&text).expect("writer output must round-trip");
        assert_eq!(back, doc);
    }

    #[test]
    fn parse_accepts_whitespace_and_rejects_garbage() {
        assert_eq!(
            parse(" { \"a\" : [ 1 , 2 ] } ").unwrap(),
            Json::obj([("a", Json::arr([Json::UInt(1), Json::UInt(2)]))])
        );
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("\"unterminated").is_err());
        assert!(parse("12 34").is_err(), "trailing bytes must be rejected");
        assert!(parse("1e9999").is_err(), "non-finite numbers rejected");
    }

    #[test]
    fn sim_stats_json_round_trips_through_the_parser() {
        let mut stats = SimStats {
            injected: 50,
            delivered: 50,
            latency_sum: 300,
            latency_count: 50,
            latency_max: 6,
            cycles: 100,
            ports: 8,
            stage_link_use: vec![50, 50, 50],
            ..Default::default()
        };
        for _ in 0..50 {
            stats.latency_histogram.record(6);
        }
        let text = sim_stats_json(&stats).encode();
        assert_round_trip(&text).expect("stats JSON must round-trip");
        assert!(text.contains("\"latency_p50\":6"));
        assert!(
            !text.contains("fault_events"),
            "static runs keep the historical encoding: {text}"
        );
        // A run that processed fault events grows the degradation block,
        // still in fixed order and still round-trippable.
        stats.fault_events = 4;
        stats.reroutes = 9;
        stats.dropped = 3;
        stats.dropped_during_outage = 2;
        stats.in_flight = 3; // keep the example conserved
        stats.links_failed = 1;
        stats.link_downtime_cycles = 20;
        stats.availability_min = 0.8;
        stats.availability_mean = 0.99;
        let text = sim_stats_json(&stats).encode();
        assert_round_trip(&text).expect("faulted stats JSON must round-trip");
        assert!(text.contains("\"fault_events\":4"));
        assert!(text.contains("\"dropped_during_outage\":2"));
        assert!(text.contains("\"dropped_steady\":1"));
        assert!(text.contains("\"availability_min\":0.8"));
        assert!(text.contains("\"latency_p99\":6"));
        assert!(text.contains("\"latency_buckets\":[0,0,50]"));
        assert!(text.contains("\"stage_link_use\":[50,50,50]"));
        assert!(
            !text.contains("repair_events") && !text.contains("retags_on_repair"),
            "failure-only timelines keep the historical encoding: {text}"
        );
        assert!(
            !text.contains("flits_"),
            "SF runs must not grow flit fields: {text}"
        );
        // A timeline that repaired links (and a repair-aware sender that
        // reacted) appends the repair counters to the degradation block,
        // each present only when nonzero.
        stats.repair_events = 2;
        let text = sim_stats_json(&stats).encode();
        assert_round_trip(&text).expect("repaired stats JSON must round-trip");
        assert!(text.contains("\"repair_events\":2"));
        assert!(!text.contains("retags_on_repair"));
        stats.retags_on_repair = 5;
        let text = sim_stats_json(&stats).encode();
        assert_round_trip(&text).expect("retagged stats JSON must round-trip");
        assert!(text.contains("\"retags_on_repair\":5"));
        let repair_at = text.find("\"repair_events\"").unwrap();
        assert!(text.find("\"availability_mean\"").unwrap() < repair_at);
        stats.repair_events = 0;
        stats.retags_on_repair = 0;
        // A wormhole run grows the flit ledger between the link-use and
        // fault blocks, still round-trippable.
        stats.flits_per_packet = 4;
        stats.flits_injected = 200;
        stats.flits_delivered = 188;
        stats.flits_dropped = 12;
        let text = sim_stats_json(&stats).encode();
        assert_round_trip(&text).expect("wormhole stats JSON must round-trip");
        assert!(text.contains("\"flits_per_packet\":4"));
        assert!(text.contains("\"flits_injected\":200"));
        assert!(text.contains("\"flits_in_flight\":0"));
        let flit_at = text.find("\"flits_per_packet\"").unwrap();
        assert!(text.find("\"stage_link_use\"").unwrap() < flit_at);
        assert!(flit_at < text.find("\"fault_events\"").unwrap());
        assert!(
            !text.contains("requests_"),
            "open-loop runs must not grow workload fields: {text}"
        );
        // A closed-loop run grows the workload request ledger after the
        // fault block, still round-trippable.
        stats.workload.issued = 40;
        stats.workload.completed = 38;
        stats.workload.aborted = 1;
        stats.workload.live = 1;
        for lat in [10u64, 12, 14] {
            stats.workload.record_latency(lat);
        }
        let text = sim_stats_json(&stats).encode();
        assert_round_trip(&text).expect("workload stats JSON must round-trip");
        assert!(text.contains("\"requests_issued\":40"));
        assert!(text.contains("\"requests_completed\":38"));
        assert!(text.contains("\"request_latency_p99\":14"));
        assert!(text.contains("\"request_latency_mean\":12"));
        let wl_at = text.find("\"requests_issued\"").unwrap();
        assert!(text.find("\"availability_mean\"").unwrap() < wl_at);
        assert!(
            !text.contains("converged_at_cycle"),
            "fixed-horizon runs keep the historical encoding: {text}"
        );
        // A run stopped by steady-state convergence stamps the window
        // boundary as the final field, still round-trippable.
        stats.converged_at_cycle = 1200;
        let text = sim_stats_json(&stats).encode();
        assert_round_trip(&text).expect("converged stats JSON must round-trip");
        assert!(text.contains("\"converged_at_cycle\":1200"));
        let cv_at = text.find("\"converged_at_cycle\"").unwrap();
        assert!(text.find("\"requests_issued\"").unwrap() < cv_at);
        assert!(text[cv_at..].ends_with("\"converged_at_cycle\":1200}"));
    }

    #[test]
    fn equal_stats_encode_identically() {
        let stats = SimStats {
            injected: 100,
            delivered: 97,
            in_flight: 3,
            latency_sum: 485,
            latency_count: 97,
            cycles: 200,
            ports: 8,
            queue_mean_occupancy: 0.125,
            ..Default::default()
        };
        assert_eq!(
            sim_stats_json(&stats).encode(),
            sim_stats_json(&stats.clone()).encode()
        );
        assert!(sim_stats_json(&stats).encode().contains("\"delivered\":97"));
    }
}
