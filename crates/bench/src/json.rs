//! A small JSON writer replacing `serde_json` for experiment artifacts.
//!
//! The workspace only ever *emits* JSON (machine-readable tables and
//! simulator statistics); it never parses untrusted input. A value tree
//! plus an escaping writer covers that completely and keeps the build
//! hermetic. Object keys keep their insertion order so emitted documents
//! are byte-stable — which the deterministic-replay regression test
//! relies on.

use iadm_sim::SimStats;
use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An unsigned integer (kept exact; not routed through `f64`).
    UInt(u64),
    /// A signed integer.
    Int(i64),
    /// A finite float (non-finite values serialize as `null`).
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from `(key, value)` pairs, preserving order.
    pub fn obj<K: Into<String>>(pairs: impl IntoIterator<Item = (K, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Builds an array.
    pub fn arr(items: impl IntoIterator<Item = Json>) -> Json {
        Json::Arr(items.into_iter().collect())
    }

    /// Compact single-line encoding.
    pub fn encode(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::UInt(v) => out.push_str(&v.to_string()),
            Json::Int(v) => out.push_str(&v.to_string()),
            Json::Float(v) => {
                if v.is_finite() {
                    // Rust's f64 Display is the shortest round-tripping
                    // decimal form, so equal stats encode equally.
                    out.push_str(&v.to_string());
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (key, value)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(key, out);
                    out.push(':');
                    value.write(out);
                }
                out.push('}');
            }
        }
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.encode())
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl From<u64> for Json {
    fn from(v: u64) -> Json {
        Json::UInt(v)
    }
}

impl From<usize> for Json {
    fn from(v: usize) -> Json {
        Json::UInt(v as u64)
    }
}

impl From<i64> for Json {
    fn from(v: i64) -> Json {
        Json::Int(v)
    }
}

impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::Float(v)
    }
}

impl From<bool> for Json {
    fn from(v: bool) -> Json {
        Json::Bool(v)
    }
}

impl From<&str> for Json {
    fn from(v: &str) -> Json {
        Json::Str(v.to_string())
    }
}

impl From<String> for Json {
    fn from(v: String) -> Json {
        Json::Str(v)
    }
}

/// The canonical JSON encoding of a simulation's statistics — every
/// field, in declaration order, so two identical runs encode to
/// identical bytes.
pub fn sim_stats_json(stats: &SimStats) -> Json {
    Json::obj([
        ("injected", Json::from(stats.injected)),
        ("delivered", Json::from(stats.delivered)),
        ("misrouted", Json::from(stats.misrouted)),
        ("dropped", Json::from(stats.dropped)),
        ("refused", Json::from(stats.refused)),
        ("in_flight", Json::from(stats.in_flight)),
        ("latency_sum", Json::from(stats.latency_sum)),
        ("latency_count", Json::from(stats.latency_count)),
        ("latency_max", Json::from(stats.latency_max)),
        ("queue_high_water", Json::from(stats.queue_high_water)),
        ("queue_mean_occupancy", Json::from(stats.queue_mean_occupancy)),
        ("cycles", Json::from(stats.cycles)),
        ("ports", Json::from(stats.ports)),
        (
            "nonstraight_imbalance",
            Json::from(stats.nonstraight_imbalance),
        ),
        ("max_link_load", Json::from(stats.max_link_load)),
        ("mean_latency", Json::from(stats.mean_latency())),
        ("throughput", Json::from(stats.throughput())),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_encode_as_json() {
        assert_eq!(Json::Null.encode(), "null");
        assert_eq!(Json::Bool(true).encode(), "true");
        assert_eq!(Json::UInt(u64::MAX).encode(), "18446744073709551615");
        assert_eq!(Json::Int(-5).encode(), "-5");
        assert_eq!(Json::Float(0.5).encode(), "0.5");
        assert_eq!(Json::Float(f64::NAN).encode(), "null");
        assert_eq!(Json::from("hi").encode(), "\"hi\"");
    }

    #[test]
    fn strings_are_escaped() {
        assert_eq!(
            Json::from("a\"b\\c\nd\te\u{01}").encode(),
            "\"a\\\"b\\\\c\\nd\\te\\u0001\""
        );
    }

    #[test]
    fn nesting_and_key_order_are_preserved(){
        let doc = Json::obj([
            ("z", Json::arr([Json::from(1u64), Json::Null])),
            ("a", Json::obj([("k", Json::from(true))])),
        ]);
        assert_eq!(doc.encode(), "{\"z\":[1,null],\"a\":{\"k\":true}}");
    }

    #[test]
    fn equal_stats_encode_identically() {
        let stats = SimStats {
            injected: 100,
            delivered: 97,
            in_flight: 3,
            latency_sum: 485,
            latency_count: 97,
            cycles: 200,
            ports: 8,
            queue_mean_occupancy: 0.125,
            ..Default::default()
        };
        assert_eq!(
            sim_stats_json(&stats).encode(),
            sim_stats_json(&stats.clone()).encode()
        );
        assert!(sim_stats_json(&stats).encode().contains("\"delivered\":97"));
    }
}
