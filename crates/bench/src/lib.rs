//! Shared helpers for the benchmark harness and the `tables` experiment
//! binary (see DESIGN.md's experiment index E1–E8).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod harness;
pub mod json;

use iadm_fault::scenario::{self, KindFilter};
use iadm_fault::BlockageMap;
use iadm_rng::StdRng;
use iadm_topology::Size;

/// The network sizes the complexity sweeps use.
pub const SWEEP_SIZES: [usize; 6] = [8, 32, 128, 512, 2048, 4096];

/// A deterministic blockage set of `count` faults for benchmarking.
pub fn bench_blockages(size: Size, count: usize, seed: u64) -> BlockageMap {
    scenario::random_faults(
        &mut StdRng::seed_from_u64(seed),
        size,
        count,
        KindFilter::Any,
    )
}

/// A deterministic (source, destination) sample of `count` pairs.
pub fn bench_pairs(size: Size, count: usize, seed: u64) -> Vec<(usize, usize)> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count)
        .map(|_| {
            (
                iadm_rng::Rng::gen_range(&mut rng, 0..size.n()),
                iadm_rng::Rng::gen_range(&mut rng, 0..size.n()),
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn helpers_are_deterministic() {
        let size = Size::new(64).unwrap();
        assert_eq!(bench_blockages(size, 10, 1), bench_blockages(size, 10, 1));
        assert_eq!(bench_pairs(size, 5, 2), bench_pairs(size, 5, 2));
        assert_eq!(bench_blockages(size, 10, 1).blocked_count(), 10);
    }
}
