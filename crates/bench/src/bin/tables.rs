//! Regenerates every quantitative/structural artifact of the paper
//! (DESIGN.md experiment index E1–E12) as printed tables.
//!
//! Usage: `cargo run -p iadm-bench --bin tables --release [-- e1 e2 …]`
//! With no arguments, all experiments run.

use iadm_analysis::reach::{routable_fraction, Scheme};
use iadm_analysis::{enumerate, oracle, render};
use iadm_baselines::lookahead::route_with_lookahead;
use iadm_baselines::mcmillen_siegel::{self, Scheme as MsScheme};
use iadm_baselines::parker_raghavendra::all_representations_counted;
use iadm_baselines::{DistanceTag, OpCount};
use iadm_bench::json::{sim_stats_json, Json};
use iadm_core::route::{trace, trace_tsdt};
use iadm_core::{reroute::reroute, NetworkState, TsdtTag};
use iadm_fault::scenario::{self, KindFilter};
use iadm_permute::cube_subgraph::{distinct_prefix_count, theorem_6_1_lower_bound};
use iadm_permute::reconfigure::find_reconfiguration;
use iadm_permute::Permutation;
use iadm_rng::StdRng;
use iadm_sim::{run_once, EngineKind, RoutingPolicy, SimConfig, TrafficPattern};
use iadm_topology::Size;
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).map(|a| a.to_lowercase()).collect();
    let want = |name: &str| args.is_empty() || args.iter().any(|a| a == name);

    println!("# Experiment tables — Rau/Fortes/Siegel, ISCA 1988 reproduction\n");
    if want("e1") {
        e1_theorem_3_1();
    }
    if want("e2") {
        e2_complexity();
    }
    if want("e3") {
        e3_universality();
    }
    if want("e4") {
        e4_cube_subgraphs();
    }
    if want("e5") {
        e5_figure7();
    }
    if want("e6") {
        e6_fault_tolerance();
    }
    if want("e7") {
        e7_load_balancing();
    }
    if want("e8") {
        e8_reconfiguration();
    }
    if want("e9") {
        e9_permutation_repertoire();
    }
    if want("e10") {
        e10_backtrack_budget();
    }
    if want("e11") {
        e11_availability();
    }
    if want("e12") {
        e12_circuit_blocking();
    }
}

/// Median wall time of `f` over `reps` runs, in nanoseconds.
fn median_ns<F: FnMut()>(reps: usize, mut f: F) -> u128 {
    let mut samples: Vec<u128> = (0..reps)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_nanos()
        })
        .collect();
    samples.sort_unstable();
    samples[samples.len() / 2]
}

fn e1_theorem_3_1() {
    println!("## E1 — Theorem 3.1: destination tags are state-transparent\n");
    println!(
        "{:>6} {:>12} {:>14} {:>16}",
        "N", "pairs", "states", "violations"
    );
    for n in [8usize, 16, 32, 64] {
        let size = Size::new(n).unwrap();
        let mut rng = StdRng::seed_from_u64(n as u64);
        let states = 16usize;
        let mut violations = 0usize;
        for _ in 0..states {
            let state = NetworkState::random(size, &mut rng);
            for s in size.switches() {
                for d in size.switches() {
                    if trace(size, s, d, &state).destination(size) != d {
                        violations += 1;
                    }
                }
            }
        }
        println!("{n:>6} {:>12} {states:>14} {violations:>16}", n * n);
        assert_eq!(violations, 0);
    }
    println!("\npaper: the destination address is the unique valid routing tag");
    println!("measured: zero violations in every exhaustive sweep\n");
}

fn e2_complexity() {
    println!("## E2 — rerouting-tag cost: O(1) (this paper) vs O(log N) ([9],[10]) vs enumeration ([13])\n");
    println!(
        "{:>6} | {:>14} {:>14} | {:>14} {:>14} | {:>16} {:>14}",
        "N", "Cor4.1 ns", "Cor4.2 ns", "[9] ops", "[9] ns", "[13] ops", "[13] ns"
    );
    for n in [8usize, 32, 128, 512, 2048] {
        let size = Size::new(n).unwrap();
        let tag = TsdtTag::new(size, 0);
        let path = trace_tsdt(size, 1, &tag);
        let c41 = median_ns(101, || {
            std::hint::black_box(tag.corollary_4_1(std::hint::black_box(0)));
        });
        let c42 = median_ns(101, || {
            std::hint::black_box(tag.corollary_4_2(&path, size.stages() - 1));
        });
        let dist_tag = DistanceTag::natural(size, 1, 0);
        let mut ms_ops = OpCount::default();
        mcmillen_siegel::reroute_twos_complement(size, &dist_tag, 0, &mut ms_ops).unwrap();
        let ms_ns = median_ns(101, || {
            let mut ops = OpCount::default();
            std::hint::black_box(mcmillen_siegel::reroute_twos_complement(
                size, &dist_tag, 0, &mut ops,
            ));
        });
        // [13] with the worst-case alternating distance.
        let mut dest = 0usize;
        let mut i = 0;
        while (1usize << i) < n {
            dest |= 1 << i;
            i += 2;
        }
        let (pr_ops, pr_ns) = if n <= 512 {
            let mut ops = OpCount::default();
            all_representations_counted(size, 0, dest, &mut ops);
            let ns = median_ns(11, || {
                let mut o = OpCount::default();
                std::hint::black_box(all_representations_counted(size, 0, dest, &mut o));
            });
            (ops.0.to_string(), ns.to_string())
        } else {
            ("(skipped)".into(), "-".into())
        };
        println!(
            "{n:>6} | {c41:>14} {c42:>14} | {:>14} {ms_ns:>14} | {pr_ops:>16} {pr_ns:>14}",
            ms_ops.0
        );
    }
    println!("\npaper: SSDT/TSDT nonstraight reroute is O(1); [9]/[10] need O(log N);");
    println!("[13] is 'prohibitively large'. measured: Cor 4.1 flat, [9] ops = Θ(log N),");
    println!("[13] ops grow superlinearly in log N (exponential in the digit count).\n");
}

fn e3_universality() {
    println!("## E3 — universal rerouting: REROUTE vs exhaustive oracle\n");
    println!(
        "{:>6} {:>8} {:>10} {:>10} {:>12} {:>12} {:>12} {:>12}",
        "N", "faults", "queries", "disagree", "found", "REROUTE ns", "oracle ns", "pivot ns"
    );
    let mut rng = StdRng::seed_from_u64(33);
    for n in [8usize, 32, 128, 512] {
        let size = Size::new(n).unwrap();
        let faults = 3 * n * size.stages() / 10;
        let blockages = scenario::random_faults(&mut rng, size, faults, KindFilter::Any);
        let pairs: Vec<(usize, usize)> = (0..200)
            .map(|_| {
                (
                    iadm_rng::Rng::gen_range(&mut rng, 0..n),
                    iadm_rng::Rng::gen_range(&mut rng, 0..n),
                )
            })
            .collect();
        let mut disagree = 0usize;
        let mut found = 0usize;
        for &(s, d) in &pairs {
            let rr = reroute(size, &blockages, s, d);
            let or = oracle::free_path_exists(size, &blockages, s, d);
            let pv = iadm_core::pivot::pivot_oracle(size, &blockages, s, d);
            if rr.is_ok() != or || pv != or {
                disagree += 1;
            }
            if let Ok(tag) = rr {
                found += 1;
                assert!(blockages.path_is_free(&trace_tsdt(size, s, &tag)));
            }
        }
        let rr_ns = median_ns(21, || {
            for &(s, d) in &pairs[..50] {
                std::hint::black_box(reroute(size, &blockages, s, d).ok());
            }
        }) / 50;
        let or_ns = median_ns(21, || {
            for &(s, d) in &pairs[..50] {
                std::hint::black_box(oracle::find_free_path(size, &blockages, s, d));
            }
        }) / 50;
        let pv_ns = median_ns(21, || {
            for &(s, d) in &pairs[..50] {
                std::hint::black_box(iadm_core::pivot::pivot_oracle(size, &blockages, s, d));
            }
        }) / 50;
        println!(
            "{n:>6} {faults:>8} {:>10} {disagree:>10} {found:>12} {rr_ns:>12} {or_ns:>12} {pv_ns:>12}",
            pairs.len()
        );
        assert_eq!(disagree, 0);
    }
    println!("\npaper: REROUTE finds a blockage-free path iff one exists.");
    println!("measured: zero disagreements among REROUTE, the O(N log N) BFS oracle and");
    println!("the O(log N) pivot oracle derived from Lemma A2.1 (fastest of the three).\n");
}

fn e4_cube_subgraphs() {
    println!("## E4 — Theorem 6.1: distinct cube subgraphs\n");
    println!(
        "{:>6} {:>18} {:>10} {:>26}",
        "N", "distinct prefixes", "(=N/2?)", "lower bound (N/2)*2^N"
    );
    for n in [4usize, 8, 16, 32, 64] {
        let size = Size::new(n).unwrap();
        let prefixes = distinct_prefix_count(size);
        println!(
            "{n:>6} {prefixes:>18} {:>10} {:>26}",
            prefixes == n / 2,
            theorem_6_1_lower_bound(size)
        );
        assert_eq!(prefixes, n / 2);
    }
    // Exhaustive construction check for N=4.
    let size4 = Size::new(4).unwrap();
    let all = iadm_permute::cube_subgraph::enumerate_construction(size4);
    let distinct: std::collections::BTreeSet<Vec<_>> =
        all.iter().map(|g| g.edges().copied().collect()).collect();
    println!(
        "\nN=4 exhaustive: construction yields {} subgraphs, {} distinct (bound {})",
        all.len(),
        distinct.len(),
        theorem_6_1_lower_bound(size4)
    );
    println!("paper: at least (N/2)*2^N distinct cube subgraphs. measured: exact match.\n");
}

fn e5_figure7() {
    println!("## E5 — Figure 7: all routing paths from 1 to 0 (N=8), and path counts\n");
    let size = Size::new(8).unwrap();
    print!("{}", render::all_paths_listing(size, 1, 0));
    println!("\npath count by distance (N=8):");
    println!("{:>9} {:>7}", "distance", "paths");
    for d in 0..8usize {
        println!("{d:>9} {:>7}", enumerate::count_paths(size, 0, d));
    }
    println!("\npaper Figure 7 shows 4 paths for (1, 0); measured: 4 (two sharing");
    println!("switches but using distinct ±2^(n-1) links at the last stage).\n");
}

fn e6_fault_tolerance() {
    println!("## E6 — routable fraction vs faults (N=16, mean of 20 trials)\n");
    let size = Size::new(16).unwrap();
    let trials = 20;
    let mut rng = StdRng::seed_from_u64(2026);
    println!(
        "{:>7} | {:>10} {:>10} {:>10} {:>10} | {:>8} {:>8}",
        "faults", "ICube", "SSDT", "TSDT+RR", "oracle", "[9]", "[10]"
    );
    for faults in [0usize, 1, 2, 4, 8, 16, 32, 64] {
        let mut means = [0.0f64; 6];
        for _ in 0..trials {
            let blockages = scenario::random_faults(&mut rng, size, faults, KindFilter::Any);
            for (i, scheme) in Scheme::ALL.into_iter().enumerate() {
                means[i] += routable_fraction(size, &blockages, scheme);
            }
            // Baselines measured directly.
            let mut ms_ok = 0usize;
            let mut la_ok = 0usize;
            for s in size.switches() {
                for d in size.switches() {
                    if mcmillen_siegel::route_dynamic(size, &blockages, s, d, MsScheme::Add)
                        .0
                        .is_some()
                    {
                        ms_ok += 1;
                    }
                    if route_with_lookahead(size, &blockages, s, d).0.is_some() {
                        la_ok += 1;
                    }
                }
            }
            means[4] += ms_ok as f64 / (size.n() * size.n()) as f64;
            means[5] += la_ok as f64 / (size.n() * size.n()) as f64;
        }
        for m in &mut means {
            *m /= trials as f64;
        }
        println!(
            "{faults:>7} | {:>10.4} {:>10.4} {:>10.4} {:>10.4} | {:>8.4} {:>8.4}",
            means[0], means[1], means[2], means[3], means[4], means[5]
        );
        assert!(
            (means[2] - means[3]).abs() < 1e-12,
            "universality must hold"
        );
    }
    println!("\npaper: SSDT evades nonstraight blockages; TSDT+REROUTE evades every");
    println!("evadable blockage (equal to the oracle); prior schemes sit in between.\n");
}

fn e7_load_balancing() {
    println!("## E7 — SSDT load balancing vs fixed state C (N=16, uniform traffic)\n");
    let size = Size::new(16).unwrap();
    println!(
        "{:>6} | {:>10} {:>10} | {:>8} {:>8} | {:>10} {:>10} | {:>9} {:>9}",
        "load",
        "lat C",
        "lat SSDT",
        "peakQ C",
        "peakQ S",
        "meanQ C",
        "meanQ S",
        "imbal C",
        "imbal S"
    );
    let mut json_rows: Vec<Json> = Vec::new();
    for load in [0.1f64, 0.3, 0.5, 0.7, 0.9] {
        let config = SimConfig {
            size,
            queue_capacity: 4,
            cycles: 4000,
            warmup: 500,
            offered_load: load,
            seed: 11,
            engine: EngineKind::Synchronous,
        };
        let fixed = run_once(config, RoutingPolicy::FixedC, TrafficPattern::Uniform);
        let ssdt = run_once(config, RoutingPolicy::SsdtBalance, TrafficPattern::Uniform);
        println!(
            "{load:>6.2} | {:>10.2} {:>10.2} | {:>8} {:>8} | {:>10.3} {:>10.3} | {:>9.3} {:>9.3}",
            fixed.mean_latency(),
            ssdt.mean_latency(),
            fixed.queue_high_water,
            ssdt.queue_high_water,
            fixed.queue_mean_occupancy,
            ssdt.queue_mean_occupancy,
            fixed.nonstraight_imbalance,
            ssdt.nonstraight_imbalance,
        );
        json_rows.push(Json::obj([
            ("load", Json::from(load)),
            ("fixed_c", sim_stats_json(&fixed)),
            ("ssdt_balance", sim_stats_json(&ssdt)),
        ]));
    }
    // Machine-readable twin of the table above; byte-stable across runs
    // (fixed seed), so downstream plots can diff regenerated artifacts.
    println!("\nE7-json: {}", Json::arr(json_rows).encode());
    println!("\npaper: choosing the shorter nonstraight buffer 'evenly distribute[s]");
    println!("the message load'. measured: lower latency/queue pressure at load, and");
    println!("the nonstraight imbalance index drops from 1.0 (fixed C sends all of a");
    println!("switch's nonstraight traffic down one sign) to near 0 (evenly spread).\n");
}

fn e9_permutation_repertoire() {
    use iadm_permute::admissible::is_cube_admissible;
    use iadm_permute::solver::{is_passable, Discipline};
    println!(
        "## E9 — one-pass permutation repertoire: ICube vs IADM vs Gamma (beyond the paper)\n"
    );

    // Exhaustive for N=4.
    let size4 = Size::new(4).unwrap();
    let mut counts = (0usize, 0usize, 0usize, 0usize);
    let mut items: Vec<usize> = (0..4).collect();
    let mut perms: Vec<Vec<usize>> = Vec::new();
    heap_permutations(&mut items, 4, &mut perms);
    for map in &perms {
        let p = Permutation::new(map.clone()).unwrap();
        counts.0 += 1;
        if is_cube_admissible(size4, &p) {
            counts.1 += 1;
        }
        if is_passable(size4, &p, Discipline::SwitchDisjoint) {
            counts.2 += 1;
        }
        if is_passable(size4, &p, Discipline::LinkDisjoint) {
            counts.3 += 1;
        }
    }
    println!("N=4 exhaustive over all {} permutations:", counts.0);
    println!(
        "  cube-admissible: {}   IADM-passable: {}   Gamma-passable: {}",
        counts.1, counts.2, counts.3
    );

    // Sampled for N=8 and N=16.
    println!("\nsampled (1000 random permutations per size):");
    println!(
        "{:>6} {:>16} {:>16} {:>16}",
        "N", "cube frac", "IADM frac", "Gamma frac"
    );
    let mut rng = StdRng::seed_from_u64(909);
    for n in [8usize, 16] {
        let size = Size::new(n).unwrap();
        let trials = 1000;
        let mut cube = 0usize;
        let mut iadm = 0usize;
        let mut gamma = 0usize;
        for _ in 0..trials {
            let p = Permutation::random(size, &mut rng);
            if is_cube_admissible(size, &p) {
                cube += 1;
            }
            if is_passable(size, &p, Discipline::SwitchDisjoint) {
                iadm += 1;
            }
            if is_passable(size, &p, Discipline::LinkDisjoint) {
                gamma += 1;
            }
        }
        println!(
            "{n:>6} {:>16.3} {:>16.3} {:>16.3}",
            cube as f64 / trials as f64,
            iadm as f64 / trials as f64,
            gamma as f64 / trials as f64
        );
    }
    println!("\npaper (Section 6): the IADM passes all cube-admissible permutations plus");
    println!("their shift-conjugates; the exact solver confirms the strict hierarchy");
    println!("cube < IADM <= Gamma and quantifies the repertoire enlargement.\n");
}

fn e10_backtrack_budget() {
    use iadm_core::reroute::reroute_bounded;
    println!("## E10 — dynamic rerouting with a backtrack budget (N=16)\n");
    println!("The paper: 'Whether rerouting is done by the sender or dynamically is an");
    println!("implementation decision which depends on how many stages of backtracking");
    println!("are allowed.' Success fraction of all pairs vs budget, and the depth");
    println!("distribution actually needed (mean over 30 random 12-fault sets):\n");
    let size = Size::new(16).unwrap();
    let trials = 30;
    let faults = 12;
    let mut rng = StdRng::seed_from_u64(1010);
    let budgets: Vec<usize> = (0..=size.stages()).collect();
    let mut success = vec![0usize; budgets.len()];
    let mut depth_histogram = vec![0usize; size.stages() + 1];
    let mut total = 0usize;
    for _ in 0..trials {
        let blockages = scenario::random_faults(&mut rng, size, faults, KindFilter::Any);
        for s in size.switches() {
            for d in size.switches() {
                total += 1;
                for (bi, &budget) in budgets.iter().enumerate() {
                    if reroute_bounded(size, &blockages, s, d, budget).is_ok() {
                        success[bi] += 1;
                    }
                }
                if let Ok((_, depth)) = reroute_bounded(size, &blockages, s, d, size.stages()) {
                    depth_histogram[depth] += 1;
                }
            }
        }
    }
    println!("{:>8} {:>14}", "budget", "success frac");
    for (bi, &budget) in budgets.iter().enumerate() {
        println!("{budget:>8} {:>14.4}", success[bi] as f64 / total as f64);
    }
    println!("\n{:>8} {:>14}", "depth k", "share of successes");
    let succ_total: usize = depth_histogram.iter().sum();
    for (k, &count) in depth_histogram.iter().enumerate() {
        if count > 0 {
            println!("{k:>8} {:>14.4}", count as f64 / succ_total as f64);
        }
    }
    println!("\nbudget 0 equals SSDT's power (state flips only); budget n equals the");
    println!("sender-side universal REROUTE; small budgets already capture most of the");
    println!("rerouting benefit, supporting the paper's dynamic-implementation note.\n");
}

fn e11_availability() {
    use iadm_analysis::availability::{icube_pair_availability, sweep};
    println!("## E11 — pair availability under iid link failures (N=16, 40 Monte Carlo trials)\n");
    let size = Size::new(16).unwrap();
    let ps = [0.005f64, 0.01, 0.02, 0.05, 0.1, 0.2];
    let rows = sweep(size, &ps, 40, 1600);
    println!(
        "{:>7} | {:>12} {:>10} | {:>10} {:>10} {:>10}",
        "p", "ICube (1-p)^n", "ICube MC", "SSDT", "TSDT+RR", "oracle"
    );
    for row in &rows {
        println!(
            "{:>7.3} | {:>12.4} {:>10.4} | {:>10.4} {:>10.4} {:>10.4}",
            row.p,
            row.icube_closed_form,
            row.measured[0],
            row.measured[1],
            row.measured[2],
            row.measured[3]
        );
        assert!((row.measured[2] - row.measured[3]).abs() < 1e-12);
        let _ = icube_pair_availability(size, row.p);
    }
    println!("\nthe single-path ICube pair survives with probability (1-p)^n (closed");
    println!("form, matched by Monte Carlo); the IADM's spare links lift the curve,");
    println!("and TSDT+REROUTE again sits exactly on the oracle.\n");
}

fn e12_circuit_blocking() {
    use iadm_sim::circuit::{run_circuit, CircuitConfig, CircuitPolicy};
    println!("## E12 — circuit-switched blocking probability (N=16, busy links)\n");
    println!("the paper's blockages cover links that are 'faulty or busy'; here the");
    println!("busy case: circuits hold their links exclusively, new requests route");
    println!("around them (ICube: unique path; IADM: REROUTE over the busy map).\n");
    let size = Size::new(16).unwrap();
    println!(
        "{:>8} | {:>14} {:>14} | {:>12} {:>12}",
        "arrival", "block ICube", "block IADM", "util ICube", "util IADM"
    );
    for load in [0.1f64, 0.2, 0.4, 0.6, 0.8] {
        let config = CircuitConfig {
            size,
            arrival_prob: load,
            mean_hold: 6.0,
            slots: 6000,
            warmup: 1000,
            seed: 2025,
        };
        let faults = iadm_fault::BlockageMap::new(size);
        let icube = run_circuit(config, CircuitPolicy::ICubeOnly, &faults);
        let iadm = run_circuit(config, CircuitPolicy::IadmReroute, &faults);
        println!(
            "{load:>8.2} | {:>14.4} {:>14.4} | {:>12.4} {:>12.4}",
            icube.blocking_probability(),
            iadm.blocking_probability(),
            icube.mean_link_utilization(size),
            iadm.mean_link_utilization(size),
        );
    }
    println!("\nthe IADM's alternate paths cut circuit blocking at every load while");
    println!("carrying more simultaneous circuits (higher utilization).\n");
}

fn heap_permutations(items: &mut Vec<usize>, k: usize, out: &mut Vec<Vec<usize>>) {
    if k == 1 {
        out.push(items.clone());
        return;
    }
    for i in 0..k {
        heap_permutations(items, k - 1, out);
        if k.is_multiple_of(2) {
            items.swap(i, k - 1);
        } else {
            items.swap(0, k - 1);
        }
    }
}

fn e8_reconfiguration() {
    println!("## E8 — permutation reconfiguration under nonstraight faults (N=8)\n");
    let size = Size::new(8).unwrap();
    let mut rng = StdRng::seed_from_u64(88);
    println!(
        "{:>8} {:>14} {:>14} {:>18}",
        "faults", "trials", "reconfigured", "perms verified"
    );
    for faults in [1usize, 2, 4, 8] {
        let trials = 50;
        let mut ok = 0usize;
        let mut perms_verified = 0usize;
        for _ in 0..trials {
            let blockages =
                scenario::random_faults(&mut rng, size, faults, KindFilter::NonstraightOnly);
            if let Some(recon) = find_reconfiguration(size, &blockages) {
                ok += 1;
                let sub = recon.subgraph(size);
                assert!(blockages.blocked_links().iter().all(|l| !sub.contains(*l)));
                for mask in 0..size.n() {
                    let logical = Permutation::xor(size, mask);
                    let physical = logical.conjugate_by_shift(size, size.sub(0, recon.x));
                    if recon.passes(size, &physical) {
                        perms_verified += 1;
                    }
                }
            }
        }
        println!("{faults:>8} {trials:>14} {ok:>14} {perms_verified:>18}");
    }
    println!("\npaper: under nonstraight faults the IADM reconfigures to a fault-free");
    println!("cube subgraph and still passes cube-admissible permutations.");
    println!("measured: every successful reconfiguration passes all 8 XOR permutations.\n");
}
