//! Simulator throughput benchmark and perf-trajectory gate.
//!
//! Measures the packet-switching engine's hot path — simulated cycles per
//! second and delivered packets per second — at N ∈ {64, 256, 1024} under
//! every routing policy, fault-free, fixed seed. Each configuration is
//! timed three times and the best run is reported (the engine is
//! deterministic per seed, so `delivered` is identical across repeats and
//! only wall time varies).
//!
//! A second section benchmarks the event-driven engine against the
//! synchronous loop in its design regime — low offered load, N up to
//! 8192 — where skipping idle switches is the whole game. Those cases
//! carry the engine in their policy label (`FixedC/lowload/sync` vs
//! `FixedC/lowload/event`) so the (n, policy) gate key keeps both
//! trajectories separately.
//!
//! A third section (`campbench`) measures campaign throughput — **runs
//! per second** over a 1000-run grid that shares one (size, scenario)
//! pair, the fleet-campaign shape where per-run setup dominates. The
//! `campbench/fresh` case rebuilds the blockage map and route table
//! every run (the pre-sharing executor); `campbench/shared` hands every
//! run one `Arc<BlockageMap>` + `Arc<RouteLut>` pair the way
//! `iadm-sweep`'s executor does. For these two cases `packets_per_sec`
//! carries runs/sec, so the same (n, policy) gate machinery tracks
//! campaign throughput PR over PR.
//!
//! Usage:
//!   simbench                      print the report JSON to stdout
//!   simbench --out PATH           also write it to PATH
//!   simbench --check BASELINE     compare against a previous report and
//!                                 fail when any configuration regressed
//!                                 by more than the tolerance
//!   simbench --history PATH       compare against the *best* rate each
//!                                 (n, policy) ever posted to the given
//!                                 JSONL history (one report per line),
//!                                 printing a one-line delta per case —
//!                                 the PR-over-PR trajectory gate
//!   simbench --tolerance 0.25     regression tolerance (default 0.20)
//!
//! The checked-in `BENCH_sim.json` at the repo root is the recorded perf
//! trajectory; `scripts/bench_gate.sh` wires both checks into the smoke
//! pipeline and appends each fresh report to the history, so the bar
//! ratchets up as PRs land instead of only ever being "within tolerance
//! of last time".

use iadm_bench::json::{assert_round_trip, parse, Json};
use iadm_fault::scenario::ScenarioSpec;
use iadm_sim::{EngineKind, RouteLut, RoutingPolicy, SimConfig, Simulator, TrafficPattern};
use iadm_topology::Size;
use std::sync::Arc;
use std::time::Instant;

/// `(N, simulated cycles)`: cycle counts scaled down with N so every
/// configuration runs in comparable wall time on a small machine.
const SIZES: [(usize, usize); 3] = [(64, 3000), (256, 1500), (1024, 400)];

const POLICIES: [(RoutingPolicy, &str); 5] = [
    (RoutingPolicy::FixedC, "FixedC"),
    (RoutingPolicy::SsdtBalance, "SsdtBalance"),
    (RoutingPolicy::RandomSign, "RandomSign"),
    (RoutingPolicy::TsdtSender, "TsdtSender"),
    // d = 2 samples the full pivot-theory candidate set, so this case
    // prices the occupancy comparison on top of the SSDT decision path.
    (
        RoutingPolicy::DChoice {
            d: 2,
            sticky: false,
        },
        "DChoice2",
    ),
];

const OFFERED_LOAD: f64 = 0.3;
const SEED: u64 = 42;
const REPS: usize = 3;

/// The multi-lane wormhole case (`wormhole:4:4`): 4-flit worms over
/// 4-lane links, priced at every main size. This is the reservation
/// pipeline's hot path — lane grant scans, per-worm flit advances, and
/// teardown-free steady pipelining — none of which the store-and-forward
/// cases touch, so it gets its own gate trajectory under the
/// `SsdtBalance/wormhole:4:4` label.
const WORMHOLE_CASE: (u32, u32, &str) = (4, 4, "SsdtBalance/wormhole:4:4");

/// `(N, simulated cycles)` for the low-load engine comparison. The
/// cycle counts shrink with N like the main section's; the offered load
/// is chosen per size so every configuration sees the same absolute
/// injection rate (`LOWLOAD_RATE` packets per cycle across the whole
/// fabric) — the mostly-idle regime the event engine exists for, held
/// constant as N grows.
const LOWLOAD_SIZES: [(usize, usize); 4] = [(64, 20000), (256, 8000), (1024, 2000), (8192, 500)];
const LOWLOAD_RATE: f64 = 0.8;

const ENGINES: [(EngineKind, &str); 2] = [
    (EngineKind::Synchronous, "FixedC/lowload/sync"),
    (EngineKind::EventDriven, "FixedC/lowload/event"),
];

/// Campaign-engine section (`campbench`): `(N, cycles per run, runs)`
/// for a many-run shared-topology grid — the fleet-campaign shape where
/// per-run setup (scenario realization + route-table build) is a large
/// share of each run's cost. The grid holds one `(size, scenario)` pair
/// and varies only seed and load, exactly the case the campaign
/// executor's shared immutable bases exist for.
const CAMPAIGN: (usize, usize, usize) = (1024, 12, 1000);

/// `campbench/fresh` rebuilds the blockage map and route table per run
/// (the pre-sharing executor); `campbench/shared` clones one
/// `Arc<BlockageMap>` + `Arc<RouteLut>` pair per run. For these two
/// cases `packets_per_sec` carries **runs per second** (the campaign
/// throughput the gate tracks); `delivered` still counts packets and
/// must be identical between the two — sharing may never change
/// statistics.
const CAMPAIGN_VARIANTS: [(bool, &str); 2] =
    [(false, "campbench/fresh"), (true, "campbench/shared")];

fn bench_campaign(share_bases: bool, name: &'static str) -> Case {
    let (n, cycles, runs) = CAMPAIGN;
    let size = Size::new(n).expect("benchmark sizes are powers of two");
    let scenario = ScenarioSpec::SwitchBandBurst {
        stage: 0,
        first: 0,
        count: 64,
    };
    let mut delivered = 0u64;
    let mut best = f64::INFINITY;
    for _ in 0..REPS {
        let start = Instant::now();
        let shared = share_bases.then(|| {
            let blockages = Arc::new(scenario.realize(size, SEED));
            let lut = Arc::new(RouteLut::new(size, &blockages));
            (blockages, lut)
        });
        delivered = 0;
        for run in 0..runs {
            let config = SimConfig {
                size,
                queue_capacity: 4,
                cycles,
                warmup: cycles / 5,
                // Low absolute rate (the event engine's regime), varied
                // per run like a load axis would.
                offered_load: (0.5 + (run % 8) as f64 * 0.1) / n as f64,
                seed: iadm_rng::mix(SEED, run as u64),
                engine: EngineKind::EventDriven,
            };
            let timeline = scenario.timeline(size, config.seed, cycles as u64);
            let sim = match &shared {
                Some((blockages, lut)) => Simulator::with_shared_lut(
                    config,
                    RoutingPolicy::SsdtBalance,
                    TrafficPattern::Uniform,
                    blockages.clone(),
                    lut.clone(),
                    timeline,
                ),
                None => Simulator::with_fault_timeline(
                    config,
                    RoutingPolicy::SsdtBalance,
                    TrafficPattern::Uniform,
                    scenario.realize(size, SEED),
                    timeline,
                ),
            };
            delivered += sim.run().delivered;
        }
        best = best.min(start.elapsed().as_secs_f64());
    }
    Case {
        n,
        policy: name,
        cycles: cycles * runs,
        delivered,
        cycles_per_sec: (cycles * runs) as f64 / best,
        packets_per_sec: runs as f64 / best,
    }
}

struct Case {
    n: usize,
    policy: &'static str,
    cycles: usize,
    delivered: u64,
    cycles_per_sec: f64,
    packets_per_sec: f64,
}

fn bench_case(n: usize, cycles: usize, policy: RoutingPolicy, name: &'static str) -> Case {
    bench_config(
        SimConfig {
            size: Size::new(n).expect("benchmark sizes are powers of two"),
            queue_capacity: 4,
            cycles,
            warmup: cycles / 5,
            offered_load: OFFERED_LOAD,
            seed: SEED,
            engine: EngineKind::Synchronous,
        },
        policy,
        name,
    )
}

fn bench_config(config: SimConfig, policy: RoutingPolicy, name: &'static str) -> Case {
    let (n, cycles) = (config.size.n(), config.cycles);
    let mut delivered = 0u64;
    let mut best = f64::INFINITY;
    for _ in 0..REPS {
        let sim = Simulator::new(config, policy, TrafficPattern::Uniform);
        let start = Instant::now();
        let stats = sim.run();
        let dt = start.elapsed().as_secs_f64();
        delivered = stats.delivered;
        best = best.min(dt);
    }
    Case {
        n,
        policy: name,
        cycles,
        delivered,
        cycles_per_sec: cycles as f64 / best,
        packets_per_sec: delivered as f64 / best,
    }
}

fn bench_wormhole(n: usize, cycles: usize) -> Case {
    let (flits, lanes, name) = WORMHOLE_CASE;
    let config = SimConfig {
        size: Size::new(n).expect("benchmark sizes are powers of two"),
        queue_capacity: 4,
        cycles,
        warmup: cycles / 5,
        offered_load: OFFERED_LOAD,
        seed: SEED,
        engine: EngineKind::Synchronous,
    };
    let mut delivered = 0u64;
    let mut best = f64::INFINITY;
    for _ in 0..REPS {
        let sim = Simulator::new(config, RoutingPolicy::SsdtBalance, TrafficPattern::Uniform)
            .with_wormhole_switching(flits, lanes);
        let start = Instant::now();
        let stats = sim.run();
        let dt = start.elapsed().as_secs_f64();
        delivered = stats.delivered;
        best = best.min(dt);
    }
    Case {
        n,
        policy: name,
        cycles,
        delivered,
        cycles_per_sec: cycles as f64 / best,
        packets_per_sec: delivered as f64 / best,
    }
}

fn report(cases: &[Case]) -> Json {
    Json::obj([
        ("benchmark", Json::from("simbench")),
        ("offered_load", Json::from(OFFERED_LOAD)),
        ("seed", Json::from(SEED)),
        ("reps", Json::from(REPS)),
        (
            "cases",
            Json::arr(cases.iter().map(|c| {
                Json::obj([
                    ("n", Json::from(c.n)),
                    ("policy", Json::from(c.policy)),
                    ("cycles", Json::from(c.cycles)),
                    ("delivered", Json::from(c.delivered)),
                    ("cycles_per_sec", Json::from(c.cycles_per_sec)),
                    ("packets_per_sec", Json::from(c.packets_per_sec)),
                ])
            })),
        ),
    ])
}

/// Pulls `(n, policy) -> packets_per_sec` pairs out of a report tree.
fn extract_rates(doc: &Json) -> Vec<(u64, String, f64)> {
    let Json::Obj(pairs) = doc else {
        panic!("baseline root must be an object");
    };
    let cases = pairs
        .iter()
        .find(|(k, _)| k == "cases")
        .map(|(_, v)| v)
        .expect("baseline must have a `cases` array");
    let Json::Arr(items) = cases else {
        panic!("`cases` must be an array");
    };
    items
        .iter()
        .map(|case| {
            let Json::Obj(fields) = case else {
                panic!("each case must be an object");
            };
            let field = |name: &str| {
                fields
                    .iter()
                    .find(|(k, _)| k == name)
                    .map(|(_, v)| v)
                    .unwrap_or_else(|| panic!("case is missing `{name}`"))
            };
            let n = match field("n") {
                Json::UInt(v) => *v,
                other => panic!("`n` must be an unsigned integer, got {other:?}"),
            };
            let policy = match field("policy") {
                Json::Str(s) => s.clone(),
                other => panic!("`policy` must be a string, got {other:?}"),
            };
            let rate = match field("packets_per_sec") {
                Json::Float(v) => *v,
                Json::UInt(v) => *v as f64,
                other => panic!("`packets_per_sec` must be a number, got {other:?}"),
            };
            (n, policy, rate)
        })
        .collect()
}

/// Compares current rates against a baseline report; returns the failure
/// messages (empty = gate passes).
fn check_against(baseline: &Json, current: &[Case], tolerance: f64) -> Vec<String> {
    let mut failures = Vec::new();
    for (n, policy, base_rate) in extract_rates(baseline) {
        let Some(case) = current
            .iter()
            .find(|c| c.n as u64 == n && c.policy == policy)
        else {
            failures.push(format!(
                "baseline case N={n} {policy} is no longer measured"
            ));
            continue;
        };
        let floor = base_rate * (1.0 - tolerance);
        if case.packets_per_sec < floor {
            failures.push(format!(
                "N={n} {policy}: {:.0} packets/s < {:.0} (baseline {:.0} - {:.0}%)",
                case.packets_per_sec,
                floor,
                base_rate,
                tolerance * 100.0
            ));
        } else if case.packets_per_sec > base_rate * (1.0 + tolerance) {
            eprintln!(
                "note: N={n} {policy} improved to {:.0} packets/s (baseline {:.0}); \
                 consider refreshing BENCH_sim.json",
                case.packets_per_sec, base_rate
            );
        }
    }
    failures
}

/// Folds every report in a JSONL history into the best rate each
/// `(n, policy)` ever posted, in first-appearance order.
fn best_rates(history: &str) -> Vec<(u64, String, f64)> {
    let mut best: Vec<(u64, String, f64)> = Vec::new();
    for line in history.lines() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let doc = parse(line).expect("every history line must be a valid JSON report");
        for (n, policy, rate) in extract_rates(&doc) {
            match best
                .iter_mut()
                .find(|(bn, bp, _)| *bn == n && *bp == policy)
            {
                Some(entry) => entry.2 = entry.2.max(rate),
                None => best.push((n, policy, rate)),
            }
        }
    }
    best
}

/// Gates `current` against the best-ever rate per `(n, policy)`,
/// printing a one-line delta for every case; returns the failure
/// messages (empty = gate passes). Cases with no history yet pass —
/// they become the bar for the next run.
fn check_history(best: &[(u64, String, f64)], current: &[Case], tolerance: f64) -> Vec<String> {
    let mut failures = Vec::new();
    for case in current {
        let Some((_, _, best_rate)) = best
            .iter()
            .find(|(n, policy, _)| *n == case.n as u64 && policy == case.policy)
        else {
            eprintln!(
                "history N={:<5} {:<22} {:>14.0} packets/s (first measurement)",
                case.n, case.policy, case.packets_per_sec
            );
            continue;
        };
        let delta = (case.packets_per_sec - best_rate) / best_rate * 100.0;
        eprintln!(
            "history N={:<5} {:<22} {:>14.0} packets/s vs best {:>14.0} ({delta:+.1}%)",
            case.n, case.policy, case.packets_per_sec, best_rate
        );
        if case.packets_per_sec < best_rate * (1.0 - tolerance) {
            failures.push(format!(
                "N={} {}: {:.0} packets/s is more than {:.0}% below the best recorded {:.0}",
                case.n,
                case.policy,
                case.packets_per_sec,
                tolerance * 100.0,
                best_rate
            ));
        }
    }
    failures
}

fn main() {
    let mut out_path: Option<String> = None;
    let mut baseline_path: Option<String> = None;
    let mut history_path: Option<String> = None;
    let mut tolerance = 0.20f64;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => out_path = Some(args.next().expect("--out needs a path")),
            "--check" => baseline_path = Some(args.next().expect("--check needs a path")),
            "--history" => history_path = Some(args.next().expect("--history needs a path")),
            "--tolerance" => {
                tolerance = args
                    .next()
                    .expect("--tolerance needs a value")
                    .parse()
                    .expect("--tolerance must be a number");
                assert!(
                    tolerance.is_finite() && (0.0..1.0).contains(&tolerance),
                    "tolerance must be in [0, 1)"
                );
            }
            other => panic!("unknown argument `{other}` (see simbench --help comments)"),
        }
    }

    let mut cases = Vec::new();
    for (n, cycles) in SIZES {
        for (policy, name) in POLICIES {
            let case = bench_case(n, cycles, policy, name);
            eprintln!(
                "N={:<5} {:<12} {:>12.1} cycles/s {:>14.1} packets/s (delivered {})",
                case.n, case.policy, case.cycles_per_sec, case.packets_per_sec, case.delivered
            );
            cases.push(case);
        }
    }
    for (n, cycles) in SIZES {
        let case = bench_wormhole(n, cycles);
        eprintln!(
            "N={:<5} {:<22} {:>12.1} cycles/s {:>14.1} packets/s (delivered {})",
            case.n, case.policy, case.cycles_per_sec, case.packets_per_sec, case.delivered
        );
        cases.push(case);
    }
    for (n, cycles) in LOWLOAD_SIZES {
        for (engine, name) in ENGINES {
            let case = bench_config(
                SimConfig {
                    size: Size::new(n).expect("benchmark sizes are powers of two"),
                    queue_capacity: 4,
                    cycles,
                    warmup: cycles / 5,
                    offered_load: LOWLOAD_RATE / n as f64,
                    seed: SEED,
                    engine,
                },
                RoutingPolicy::FixedC,
                name,
            );
            eprintln!(
                "N={:<5} {:<22} {:>12.1} cycles/s {:>14.1} packets/s (delivered {})",
                case.n, case.policy, case.cycles_per_sec, case.packets_per_sec, case.delivered
            );
            cases.push(case);
        }
        // Paired sync/event cases land adjacently; report the win.
        let [sync, event] = &cases[cases.len() - 2..] else {
            unreachable!()
        };
        assert_eq!(sync.delivered, event.delivered, "engines must agree");
        eprintln!(
            "N={n:<5} low-load event speedup: {:.2}x",
            event.packets_per_sec / sync.packets_per_sec
        );
    }
    for (share_bases, name) in CAMPAIGN_VARIANTS {
        let case = bench_campaign(share_bases, name);
        eprintln!(
            "N={:<5} {:<22} {:>12.1} cycles/s {:>14.1} runs/s    (delivered {})",
            case.n, case.policy, case.cycles_per_sec, case.packets_per_sec, case.delivered
        );
        cases.push(case);
    }
    let [fresh, shared] = &cases[cases.len() - 2..] else {
        unreachable!()
    };
    assert_eq!(
        fresh.delivered, shared.delivered,
        "shared bases must not change campaign statistics"
    );
    eprintln!(
        "N={:<5} campaign shared-bases speedup: {:.2}x",
        CAMPAIGN.0,
        shared.packets_per_sec / fresh.packets_per_sec
    );

    let doc = report(&cases);
    let encoded = doc.encode();
    assert_round_trip(&encoded).expect("report must round-trip through the JSON writer");
    println!("{encoded}");
    if let Some(path) = out_path {
        std::fs::write(&path, format!("{encoded}\n")).expect("writing the report must succeed");
        eprintln!("wrote {path}");
    }
    let mut failures = Vec::new();
    if let Some(path) = &baseline_path {
        let text = std::fs::read_to_string(path).expect("baseline must be readable");
        let baseline = parse(text.trim()).expect("baseline must be valid JSON");
        failures.extend(check_against(&baseline, &cases, tolerance));
    }
    if let Some(path) = &history_path {
        match std::fs::read_to_string(path) {
            Ok(text) => failures.extend(check_history(&best_rates(&text), &cases, tolerance)),
            Err(_) => {
                eprintln!("note: no benchmark history at {path} yet — trajectory gate skipped")
            }
        }
    }
    if !failures.is_empty() {
        for failure in &failures {
            eprintln!("FAIL: {failure}");
        }
        std::process::exit(1);
    }
    if let Some(path) = baseline_path {
        eprintln!(
            "bench gate passed: every configuration within {:.0}% of {path}",
            tolerance * 100.0
        );
    }
    if let Some(path) = history_path {
        eprintln!(
            "trajectory gate passed: every configuration within {:.0}% of the best in {path}",
            tolerance * 100.0
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn case(n: usize, policy: &'static str, rate: f64) -> Case {
        Case {
            n,
            policy,
            cycles: 100,
            delivered: 1000,
            cycles_per_sec: 1.0,
            packets_per_sec: rate,
        }
    }

    fn history_line(n: u64, policy: &str, rate: f64) -> String {
        format!(
            r#"{{"benchmark":"simbench","cases":[{{"n":{n},"policy":"{policy}","cycles":100,"delivered":1000,"cycles_per_sec":1.0,"packets_per_sec":{rate}}}]}}"#
        )
    }

    #[test]
    fn best_rates_keep_the_maximum_per_key_across_lines() {
        let history = [
            history_line(64, "FixedC", 100.0),
            history_line(64, "FixedC", 300.0),
            history_line(64, "FixedC", 200.0),
            history_line(256, "FixedC", 50.0),
        ]
        .join("\n");
        let best = best_rates(&history);
        assert_eq!(best.len(), 2);
        assert_eq!(best[0], (64, "FixedC".to_string(), 300.0));
        assert_eq!(best[1], (256, "FixedC".to_string(), 50.0));
    }

    #[test]
    fn history_gate_fails_only_below_the_best_minus_tolerance() {
        let best = vec![(64u64, "FixedC".to_string(), 1000.0)];
        // Within tolerance of the best: pass (even though below it).
        assert!(check_history(&best, &[case(64, "FixedC", 850.0)], 0.20).is_empty());
        // More than 20% below the best-ever: fail.
        let failures = check_history(&best, &[case(64, "FixedC", 700.0)], 0.20);
        assert_eq!(failures.len(), 1);
        assert!(failures[0].contains("best recorded"));
        // A case with no history yet passes and sets the next bar.
        assert!(check_history(&best, &[case(1024, "FixedC", 1.0)], 0.20).is_empty());
    }

    #[test]
    fn blank_history_lines_are_skipped() {
        let history = format!("\n{}\n\n", history_line(64, "FixedC", 10.0));
        assert_eq!(best_rates(&history).len(), 1);
    }
}
