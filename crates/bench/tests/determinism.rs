//! Deterministic-replay regression: the entire stack — fault sampling,
//! traffic generation, the simulator's internal RNG, and the JSON
//! encoder — must reproduce byte-identical output from the same seed.
//! This is the reproducibility contract EXPERIMENTS.md promises for
//! every non-timing table.

use iadm_bench::json::sim_stats_json;
use iadm_fault::scenario::{self, KindFilter};
use iadm_rng::StdRng;
use iadm_sim::{EngineKind, RoutingPolicy, SimConfig, Simulator, TrafficPattern};
use iadm_topology::Size;

/// One faulted simulation run, fully determined by `seed`.
fn run(seed: u64) -> String {
    let size = Size::new(64).unwrap();
    // 10% of the 3·N·n link slots faulted, from the same seed stream.
    let faults = 3 * size.n() * size.stages() / 10;
    let blockages = scenario::random_faults(
        &mut StdRng::seed_from_u64(seed ^ 0xB10C),
        size,
        faults,
        KindFilter::Any,
    );
    let config = SimConfig {
        size,
        queue_capacity: 4,
        cycles: 400,
        warmup: 50,
        offered_load: 0.4,
        seed,
        engine: EngineKind::Synchronous,
    };
    let stats = Simulator::with_blockages(
        config,
        RoutingPolicy::SsdtBalance,
        TrafficPattern::Uniform,
        blockages,
    )
    .run();
    sim_stats_json(&stats).encode()
}

#[test]
fn same_seed_replays_to_identical_stats_bytes() {
    let first = run(0xD5EED);
    let second = run(0xD5EED);
    assert_eq!(first, second, "same-seed runs diverged");
    // Sanity: the run actually did something and the encoding carries
    // real fields (not a vacuous equality of empty strings).
    assert!(first.contains("\"injected\":"));
    assert!(first.contains("\"delivered\":"));
    assert!(!first.contains("\"injected\":0,"));
}

#[test]
fn different_seeds_diverge() {
    // The converse guard: if the stats were seed-independent constants,
    // the test above would be vacuous.
    assert_ne!(run(1), run(2));
}
