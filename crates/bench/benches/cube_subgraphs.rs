//! E4 — Theorem 6.1 machinery: generating relabeled cube subgraphs,
//! verifying the isomorphism witness, and counting distinct prefixes.
//!
//! Self-timed; build with `--features bench-inline` to enable the bodies.

#[cfg(feature = "bench-inline")]
fn main() {
    use iadm_bench::harness::{opaque, Group};
    use iadm_permute::cube_subgraph::{
        distinct_prefix_count, is_cube_via_shift, relabeled_subgraph,
    };
    use iadm_topology::Size;

    let group = Group::new("cube_subgraphs");
    for n in [8usize, 32, 128, 512] {
        let size = Size::new(n).unwrap();
        group.bench(&format!("relabeled_subgraph/{n}"), || {
            opaque(relabeled_subgraph(size, opaque(1)));
        });
        let g = relabeled_subgraph(size, 1);
        group.bench(&format!("isomorphism_witness/{n}"), || {
            opaque(is_cube_via_shift(size, &g, 1));
        });
        if n <= 128 {
            group.bench(&format!("distinct_prefix_count/{n}"), || {
                let count = distinct_prefix_count(size);
                assert_eq!(count, n / 2);
                opaque(count);
            });
        }
    }
}

#[cfg(not(feature = "bench-inline"))]
fn main() {
    eprintln!("self-timed benches are stubbed out; rebuild with `--features bench-inline`");
}
