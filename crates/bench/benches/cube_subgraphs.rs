//! E4 — Theorem 6.1 machinery: generating relabeled cube subgraphs,
//! verifying the isomorphism witness, and counting distinct prefixes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use iadm_permute::cube_subgraph::{distinct_prefix_count, is_cube_via_shift, relabeled_subgraph};
use iadm_topology::Size;
use std::hint::black_box;

fn bench_cube_subgraphs(c: &mut Criterion) {
    let mut group = c.benchmark_group("cube_subgraphs");
    for n in [8usize, 32, 128, 512] {
        let size = Size::new(n).unwrap();
        group.bench_with_input(BenchmarkId::new("relabeled_subgraph", n), &n, |b, _| {
            b.iter(|| black_box(relabeled_subgraph(size, black_box(1))))
        });
        let g = relabeled_subgraph(size, 1);
        group.bench_with_input(BenchmarkId::new("isomorphism_witness", n), &n, |b, _| {
            b.iter(|| black_box(is_cube_via_shift(size, &g, 1)))
        });
        if n <= 128 {
            group.bench_with_input(BenchmarkId::new("distinct_prefix_count", n), &n, |b, _| {
                b.iter(|| {
                    let count = distinct_prefix_count(size);
                    assert_eq!(count, n / 2);
                    black_box(count)
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_cube_subgraphs);
criterion_main!(benches);
