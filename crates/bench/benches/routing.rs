//! E1 — destination-tag routing cost (Theorem 3.1): tracing a message
//! through the IADM network under arbitrary states, versus classic ICube
//! routing and the distance-tag baseline, across network sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use iadm_baselines::DistanceTag;
use iadm_core::{icube_routing, route, NetworkState};
use iadm_topology::Size;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_routing(c: &mut Criterion) {
    let mut group = c.benchmark_group("routing_trace");
    for n in [8usize, 64, 512, 4096] {
        let size = Size::new(n).unwrap();
        let state = NetworkState::random(size, &mut StdRng::seed_from_u64(1));
        let pairs = iadm_bench::bench_pairs(size, 64, 2);

        group.bench_with_input(BenchmarkId::new("iadm_state_model", n), &n, |b, _| {
            b.iter(|| {
                for &(s, d) in &pairs {
                    black_box(route::trace(size, s, d, &state));
                }
            })
        });
        group.bench_with_input(BenchmarkId::new("icube_destination_tag", n), &n, |b, _| {
            b.iter(|| {
                for &(s, d) in &pairs {
                    black_box(icube_routing::route(size, s, d));
                }
            })
        });
        group.bench_with_input(BenchmarkId::new("distance_tag_natural", n), &n, |b, _| {
            b.iter(|| {
                for &(s, d) in &pairs {
                    let tag = DistanceTag::natural(size, s, d);
                    black_box(tag.trace(size, s));
                }
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_routing);
criterion_main!(benches);
