//! E1 — destination-tag routing cost (Theorem 3.1): tracing a message
//! through the IADM network under arbitrary states, versus classic ICube
//! routing and the distance-tag baseline, across network sizes.
//!
//! Self-timed; build with `--features bench-inline` to enable the bodies.

#[cfg(feature = "bench-inline")]
fn main() {
    use iadm_baselines::DistanceTag;
    use iadm_bench::harness::{opaque, Group};
    use iadm_core::{icube_routing, route, NetworkState};
    use iadm_rng::StdRng;
    use iadm_topology::Size;

    let group = Group::new("routing_trace");
    for n in [8usize, 64, 512, 4096] {
        let size = Size::new(n).unwrap();
        let state = NetworkState::random(size, &mut StdRng::seed_from_u64(1));
        let pairs = iadm_bench::bench_pairs(size, 64, 2);

        group.bench(&format!("iadm_state_model/{n}"), || {
            for &(s, d) in &pairs {
                opaque(route::trace(size, s, d, &state));
            }
        });
        group.bench(&format!("icube_destination_tag/{n}"), || {
            for &(s, d) in &pairs {
                opaque(icube_routing::route(size, s, d));
            }
        });
        group.bench(&format!("distance_tag_natural/{n}"), || {
            for &(s, d) in &pairs {
                let tag = DistanceTag::natural(size, s, d);
                opaque(tag.trace(size, s));
            }
        });
    }
}

#[cfg(not(feature = "bench-inline"))]
fn main() {
    eprintln!("self-timed benches are stubbed out; rebuild with `--features bench-inline`");
}
