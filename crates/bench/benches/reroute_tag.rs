//! E2 — rerouting-tag computation cost: the paper's O(1) Corollary 4.1
//! state-bit flip versus the O(log N) distance-tag recomputations of
//! McMillen–Siegel \[9\]/\[10\] and the exhaustive enumeration of
//! Parker–Raghavendra \[13\], swept across network sizes.
//!
//! The shape to observe: the Corollary 4.1 series is flat in N, the \[9\]
//! and \[10\] series grow with log N, and the \[13\] series explodes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use iadm_baselines::mcmillen_siegel::reroute_twos_complement;
use iadm_baselines::parker_raghavendra::all_representations_counted;
use iadm_baselines::{DistanceTag, OpCount};
use iadm_core::route::trace_tsdt;
use iadm_core::TsdtTag;
use iadm_topology::Size;
use std::hint::black_box;

fn bench_reroute_tag(c: &mut Criterion) {
    let mut group = c.benchmark_group("reroute_tag");
    for n in iadm_bench::SWEEP_SIZES {
        let size = Size::new(n).unwrap();

        // The paper's Corollary 4.1: one state-bit complement.
        let tag = TsdtTag::new(size, 0);
        group.bench_with_input(BenchmarkId::new("tsdt_corollary_4_1", n), &n, |b, _| {
            b.iter(|| black_box(tag.corollary_4_1(black_box(0))))
        });

        // The paper's Corollary 4.2: k-stage backtrack (worst case k = n-1).
        let path = trace_tsdt(size, 1, &tag);
        group.bench_with_input(BenchmarkId::new("tsdt_corollary_4_2", n), &n, |b, _| {
            b.iter(|| black_box(tag.corollary_4_2(&path, black_box(size.stages() - 1))))
        });

        // [9]: two's-complement representation switch, O(log N).
        let dist_tag = DistanceTag::natural(size, 1, 0);
        group.bench_with_input(BenchmarkId::new("ms_twos_complement", n), &n, |b, _| {
            b.iter(|| {
                let mut ops = OpCount::default();
                black_box(reroute_twos_complement(size, &dist_tag, 0, &mut ops))
            })
        });

        // [13]: full enumeration of redundant representations (only up to
        // moderate N; distance chosen as the worst-case alternating bits).
        if n <= 512 {
            let dest = {
                // 0b0101…01 pattern within n bits.
                let mut d = 0usize;
                let mut i = 0;
                while (1usize << i) < n {
                    d |= 1 << i;
                    i += 2;
                }
                d
            };
            group.bench_with_input(BenchmarkId::new("pr_enumeration", n), &n, |b, _| {
                b.iter(|| {
                    let mut ops = OpCount::default();
                    black_box(all_representations_counted(size, 0, dest, &mut ops))
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_reroute_tag);
criterion_main!(benches);
