//! E2 — rerouting-tag computation cost: the paper's O(1) Corollary 4.1
//! state-bit flip versus the O(log N) distance-tag recomputations of
//! McMillen–Siegel \[9\]/\[10\] and the exhaustive enumeration of
//! Parker–Raghavendra \[13\], swept across network sizes.
//!
//! The shape to observe: the Corollary 4.1 series is flat in N, the \[9\]
//! and \[10\] series grow with log N, and the \[13\] series explodes.
//!
//! Self-timed; build with `--features bench-inline` to enable the bodies.

#[cfg(feature = "bench-inline")]
fn main() {
    use iadm_baselines::mcmillen_siegel::reroute_twos_complement;
    use iadm_baselines::parker_raghavendra::all_representations_counted;
    use iadm_baselines::{DistanceTag, OpCount};
    use iadm_bench::harness::{opaque, Group};
    use iadm_core::route::trace_tsdt;
    use iadm_core::TsdtTag;
    use iadm_topology::Size;

    let group = Group::new("reroute_tag");
    for n in iadm_bench::SWEEP_SIZES {
        let size = Size::new(n).unwrap();

        // The paper's Corollary 4.1: one state-bit complement.
        let tag = TsdtTag::new(size, 0);
        group.bench(&format!("tsdt_corollary_4_1/{n}"), || {
            opaque(tag.corollary_4_1(opaque(0)));
        });

        // The paper's Corollary 4.2: k-stage backtrack (worst case k = n-1).
        let path = trace_tsdt(size, 1, &tag);
        group.bench(&format!("tsdt_corollary_4_2/{n}"), || {
            opaque(tag.corollary_4_2(&path, opaque(size.stages() - 1)));
        });

        // [9]: two's-complement representation switch, O(log N).
        let dist_tag = DistanceTag::natural(size, 1, 0);
        group.bench(&format!("ms_twos_complement/{n}"), || {
            let mut ops = OpCount::default();
            opaque(reroute_twos_complement(size, &dist_tag, 0, &mut ops));
        });

        // [13]: full enumeration of redundant representations (only up to
        // moderate N; distance chosen as the worst-case alternating bits).
        if n <= 512 {
            let dest = {
                // 0b0101…01 pattern within n bits.
                let mut d = 0usize;
                let mut i = 0;
                while (1usize << i) < n {
                    d |= 1 << i;
                    i += 2;
                }
                d
            };
            group.bench(&format!("pr_enumeration/{n}"), || {
                let mut ops = OpCount::default();
                opaque(all_representations_counted(size, 0, dest, &mut ops));
            });
        }
    }
}

#[cfg(not(feature = "bench-inline"))]
fn main() {
    eprintln!("self-timed benches are stubbed out; rebuild with `--features bench-inline`");
}
