//! E9 — permutation-passability solver cost: deciding one-pass
//! passability for the IADM (switch-disjoint) and Gamma (link-disjoint)
//! disciplines, versus the O(N log N) cube-admissibility test.
//!
//! Self-timed; build with `--features bench-inline` to enable the bodies.

#[cfg(feature = "bench-inline")]
fn main() {
    use iadm_bench::harness::{opaque, Group};
    use iadm_permute::admissible::is_cube_admissible;
    use iadm_permute::solver::{is_passable, Discipline};
    use iadm_permute::Permutation;
    use iadm_rng::StdRng;
    use iadm_topology::Size;

    let group = Group::new("permutation_solver");
    for n in [8usize, 16, 32] {
        let size = Size::new(n).unwrap();
        let mut rng = StdRng::seed_from_u64(n as u64);
        let perms: Vec<Permutation> = (0..8)
            .map(|_| Permutation::random(size, &mut rng))
            .collect();
        group.bench(&format!("cube_admissible/{n}"), || {
            for p in &perms {
                opaque(is_cube_admissible(size, p));
            }
        });
        group.bench(&format!("iadm_solver/{n}"), || {
            for p in &perms {
                opaque(is_passable(size, p, Discipline::SwitchDisjoint));
            }
        });
        group.bench(&format!("gamma_solver/{n}"), || {
            for p in &perms {
                opaque(is_passable(size, p, Discipline::LinkDisjoint));
            }
        });
    }
}

#[cfg(not(feature = "bench-inline"))]
fn main() {
    eprintln!("self-timed benches are stubbed out; rebuild with `--features bench-inline`");
}
