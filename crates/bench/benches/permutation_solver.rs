//! E9 — permutation-passability solver cost: deciding one-pass
//! passability for the IADM (switch-disjoint) and Gamma (link-disjoint)
//! disciplines, versus the O(N log N) cube-admissibility test.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use iadm_permute::admissible::is_cube_admissible;
use iadm_permute::solver::{is_passable, Discipline};
use iadm_permute::Permutation;
use iadm_topology::Size;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_solver(c: &mut Criterion) {
    let mut group = c.benchmark_group("permutation_solver");
    group.sample_size(30);
    for n in [8usize, 16, 32] {
        let size = Size::new(n).unwrap();
        let mut rng = StdRng::seed_from_u64(n as u64);
        let perms: Vec<Permutation> = (0..8)
            .map(|_| Permutation::random(size, &mut rng))
            .collect();
        group.bench_with_input(BenchmarkId::new("cube_admissible", n), &n, |b, _| {
            b.iter(|| {
                for p in &perms {
                    black_box(is_cube_admissible(size, p));
                }
            })
        });
        group.bench_with_input(BenchmarkId::new("iadm_solver", n), &n, |b, _| {
            b.iter(|| {
                for p in &perms {
                    black_box(is_passable(size, p, Discipline::SwitchDisjoint));
                }
            })
        });
        group.bench_with_input(BenchmarkId::new("gamma_solver", n), &n, |b, _| {
            b.iter(|| {
                for p in &perms {
                    black_box(is_passable(size, p, Discipline::LinkDisjoint));
                }
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_solver);
criterion_main!(benches);
