//! E3 — universal rerouting under multiple blockages: Algorithm REROUTE
//! versus the exhaustive BFS oracle, across network sizes and fault
//! densities. REROUTE matches the oracle's verdicts (tested elsewhere);
//! here we measure that it is also cheaper.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use iadm_analysis::oracle;
use iadm_core::reroute::reroute;
use iadm_topology::Size;
use std::hint::black_box;

fn bench_reroute_universal(c: &mut Criterion) {
    let mut group = c.benchmark_group("reroute_universal");
    for n in [16usize, 64, 256, 1024] {
        let size = Size::new(n).unwrap();
        // Fault 10% of the links.
        let faults = 3 * n * size.stages() / 10;
        let blockages = iadm_bench::bench_blockages(size, faults, 42);
        let pairs = iadm_bench::bench_pairs(size, 32, 7);

        group.bench_with_input(BenchmarkId::new("reroute", n), &n, |b, _| {
            b.iter(|| {
                for &(s, d) in &pairs {
                    black_box(reroute(size, &blockages, s, d).ok());
                }
            })
        });
        group.bench_with_input(BenchmarkId::new("oracle_bfs", n), &n, |b, _| {
            b.iter(|| {
                for &(s, d) in &pairs {
                    black_box(oracle::find_free_path(size, &blockages, s, d));
                }
            })
        });
        group.bench_with_input(BenchmarkId::new("pivot_oracle", n), &n, |b, _| {
            b.iter(|| {
                for &(s, d) in &pairs {
                    black_box(iadm_core::pivot::pivot_oracle(size, &blockages, s, d));
                }
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_reroute_universal);
criterion_main!(benches);
