//! E3 — universal rerouting under multiple blockages: Algorithm REROUTE
//! versus the exhaustive BFS oracle, across network sizes and fault
//! densities. REROUTE matches the oracle's verdicts (tested elsewhere);
//! here we measure that it is also cheaper.
//!
//! Self-timed; build with `--features bench-inline` to enable the bodies.

#[cfg(feature = "bench-inline")]
fn main() {
    use iadm_analysis::oracle;
    use iadm_bench::harness::{opaque, Group};
    use iadm_core::reroute::reroute;
    use iadm_topology::Size;

    let group = Group::new("reroute_universal");
    for n in [16usize, 64, 256, 1024] {
        let size = Size::new(n).unwrap();
        // Fault 10% of the links.
        let faults = 3 * n * size.stages() / 10;
        let blockages = iadm_bench::bench_blockages(size, faults, 42);
        let pairs = iadm_bench::bench_pairs(size, 32, 7);

        group.bench(&format!("reroute/{n}"), || {
            for &(s, d) in &pairs {
                opaque(reroute(size, &blockages, s, d).ok());
            }
        });
        group.bench(&format!("oracle_bfs/{n}"), || {
            for &(s, d) in &pairs {
                opaque(oracle::find_free_path(size, &blockages, s, d));
            }
        });
        group.bench(&format!("pivot_oracle/{n}"), || {
            for &(s, d) in &pairs {
                opaque(iadm_core::pivot::pivot_oracle(size, &blockages, s, d));
            }
        });
    }
}

#[cfg(not(feature = "bench-inline"))]
fn main() {
    eprintln!("self-timed benches are stubbed out; rebuild with `--features bench-inline`");
}
