//! E6 — fault-tolerance evaluation cost: computing the routable fraction
//! of all pairs under each routing scheme (the measurement kernel behind
//! the fault-tolerance curves).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use iadm_analysis::reach::{routable_fraction, Scheme};
use iadm_topology::Size;
use std::hint::black_box;

fn bench_fault_tolerance(c: &mut Criterion) {
    let mut group = c.benchmark_group("fault_tolerance");
    group.sample_size(20);
    let size = Size::new(16).unwrap();
    let blockages = iadm_bench::bench_blockages(size, 12, 5);
    for scheme in Scheme::ALL {
        group.bench_with_input(
            BenchmarkId::new("routable_fraction_n16", scheme.label()),
            &scheme,
            |b, &scheme| b.iter(|| black_box(routable_fraction(size, &blockages, scheme))),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_fault_tolerance);
criterion_main!(benches);
