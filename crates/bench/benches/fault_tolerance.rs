//! E6 — fault-tolerance evaluation cost: computing the routable fraction
//! of all pairs under each routing scheme (the measurement kernel behind
//! the fault-tolerance curves).
//!
//! Self-timed; build with `--features bench-inline` to enable the bodies.

#[cfg(feature = "bench-inline")]
fn main() {
    use iadm_analysis::reach::{routable_fraction, Scheme};
    use iadm_bench::harness::{opaque, Group};
    use iadm_topology::Size;

    let group = Group::new("fault_tolerance");
    let size = Size::new(16).unwrap();
    let blockages = iadm_bench::bench_blockages(size, 12, 5);
    for scheme in Scheme::ALL {
        group.bench(&format!("routable_fraction_n16/{}", scheme.label()), || {
            opaque(routable_fraction(size, &blockages, scheme));
        });
    }
}

#[cfg(not(feature = "bench-inline"))]
fn main() {
    eprintln!("self-timed benches are stubbed out; rebuild with `--features bench-inline`");
}
