//! E7 — packet-simulator throughput per routing policy: cycles of the
//! synchronous IADM simulator under uniform traffic.
//!
//! Self-timed; build with `--features bench-inline` to enable the bodies.

#[cfg(feature = "bench-inline")]
fn main() {
    use iadm_bench::harness::{opaque, Group};
    use iadm_sim::{EngineKind, RoutingPolicy, SimConfig, Simulator, TrafficPattern};
    use iadm_topology::Size;

    let group = Group::new("simulator");
    let cycles = 500usize;
    for policy in [
        RoutingPolicy::FixedC,
        RoutingPolicy::SsdtBalance,
        RoutingPolicy::RandomSign,
    ] {
        for n in [16usize, 64] {
            let config = SimConfig {
                size: Size::new(n).unwrap(),
                queue_capacity: 4,
                cycles,
                warmup: 50,
                offered_load: 0.5,
                seed: 1,
                engine: EngineKind::Synchronous,
            };
            group.bench(&format!("{policy:?}/{n}"), || {
                let sim = Simulator::new(config, policy, TrafficPattern::Uniform);
                opaque(sim.run());
            });
        }
    }
}

#[cfg(not(feature = "bench-inline"))]
fn main() {
    eprintln!("self-timed benches are stubbed out; rebuild with `--features bench-inline`");
}
