//! E7 — packet-simulator throughput per routing policy: cycles of the
//! synchronous IADM simulator under uniform traffic.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use iadm_sim::{RoutingPolicy, SimConfig, Simulator, TrafficPattern};
use iadm_topology::Size;
use std::hint::black_box;

fn bench_load_balance(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulator");
    group.sample_size(20);
    let cycles = 500usize;
    group.throughput(Throughput::Elements(cycles as u64));
    for policy in [
        RoutingPolicy::FixedC,
        RoutingPolicy::SsdtBalance,
        RoutingPolicy::RandomSign,
    ] {
        for n in [16usize, 64] {
            let config = SimConfig {
                size: Size::new(n).unwrap(),
                queue_capacity: 4,
                cycles,
                warmup: 50,
                offered_load: 0.5,
                seed: 1,
            };
            group.bench_with_input(BenchmarkId::new(format!("{policy:?}"), n), &n, |b, _| {
                b.iter(|| {
                    let sim = Simulator::new(config, policy, TrafficPattern::Uniform);
                    black_box(sim.run())
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_load_balance);
criterion_main!(benches);
